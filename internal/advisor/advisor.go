// Package advisor is the workload-driven self-tuning subsystem: it
// turns cheap observed execution signals into (1) an adaptive
// evaluation-method choice per query shape and (2) a partitioning
// advisor that mines recurring attribute sets so hot partitionings can
// be pre-warmed and cold ones evicted under a budget.
//
// The design is deliberately statistics-free in the cost-model sense:
// there is no selectivity estimation and nothing to keep calibrated.
// Each (query shape, method) pair accumulates an exponentially weighted
// moving average of observed solve time, failure rate, and objective
// gap; decisions are a bandit-style loop over those observations —
// fall back to the planner's fixed heuristic while cold, probe
// under-sampled alternatives, then exploit the cheapest method whose
// observed objective quality stays within tolerance, with a periodic
// staleness probe so a regressed choice is eventually re-checked.
//
// The advisor is advisory by construction: it never builds anything on
// the solve path, never fails a query, and its persisted state is a
// sidecar the rest of recovery ignores if unreadable. Everything is
// deterministic — sequence counters, not clocks or RNGs — so identical
// workloads tune identically.
package advisor

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Config tunes the advisor. The zero value means defaults.
type Config struct {
	// MinSamples is how many outcomes a method needs before its score is
	// trusted: the fallback stays in charge until it has MinSamples, and
	// alternatives are probed until they do too. Default 3.
	MinSamples int
	// ProbeEvery re-checks a non-chosen candidate after that many
	// consecutive exploit decisions on one shape, so a method that
	// regressed (or improved) after its last samples is eventually
	// re-observed. Default 32.
	ProbeEvery uint64
	// Alpha is the EWMA smoothing factor for all per-method signals
	// (higher = faster to adapt, noisier). Default 0.3.
	Alpha float64
	// FailPenalty multiplies a method's mean solve time by
	// (1 + FailPenalty·failRate): a method that times out is scored as
	// if it were that much slower. Default 4.
	FailPenalty float64
	// GapTolerance is the observed relative objective gap (vs the best
	// objective seen for the shape) beyond which a method is ineligible
	// for exploitation — speed never buys answers worse than this,
	// unless every candidate is beyond it. Default 0.10.
	GapTolerance float64
	// HotUses is how many times an attribute set must recur before the
	// partitioning advisor calls it hot. Default 3.
	HotUses uint64
	// MaxShapes and MaxSets bound the tracked state; least-recently-seen
	// entries are evicted past the cap. Defaults 256 each.
	MaxShapes int
	MaxSets   int
}

func (c Config) withDefaults() Config {
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 32
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.FailPenalty <= 0 {
		c.FailPenalty = 4
	}
	if c.GapTolerance <= 0 {
		c.GapTolerance = 0.10
	}
	if c.HotUses == 0 {
		c.HotUses = 3
	}
	if c.MaxShapes <= 0 {
		c.MaxShapes = 256
	}
	if c.MaxSets <= 0 {
		c.MaxSets = 256
	}
	return c
}

// Outcome is one execution's observed record, reported by the session
// after every real (non-cached) solve.
type Outcome struct {
	// Shape identifies the query's structure (see engine.ShapeKey);
	// Method names the strategy that ran.
	Shape  string
	Method string
	// SolveMS is the wall-clock evaluation time in milliseconds;
	// Backtracks the SketchRefine refinement backtracks (0 for direct).
	SolveMS    float64
	Backtracks int
	// Failed marks timeouts, exhausted budgets, and operational errors —
	// the method did not produce an answer. Infeasible is NOT a failure:
	// a definitive "no such package" is a correct answer and its solve
	// time still informs the score.
	Failed     bool
	Infeasible bool
	// Truncated marks a budget-limited incumbent: feasible but possibly
	// suboptimal (scored as half a failure).
	Truncated bool
	// HasObjective, Objective, and Maximize feed the per-shape objective
	// gap (skipped for feasibility-only queries and failures).
	HasObjective bool
	Objective    float64
	Maximize     bool
}

// MethodScore is one candidate's observed evidence at decision time
// (rendered in the plan's Adaptive block).
type MethodScore struct {
	Method string `json:"method"`
	// N is how many outcomes the score rests on (0 = never observed).
	N uint64 `json:"n"`
	// MeanMS, FailRate, and Gap are the EWMA signals; Score is the
	// penalized time the decision compares (lower is better).
	MeanMS   float64 `json:"mean_ms"`
	FailRate float64 `json:"fail_rate,omitempty"`
	Gap      float64 `json:"gap,omitempty"`
	Score    float64 `json:"score"`
}

// Decision is the advisor's answer for one prepared statement.
type Decision struct {
	// Method is the chosen strategy; Fallback what the fixed heuristic
	// would have picked (and what cold decisions return).
	Method   string `json:"method"`
	Fallback string `json:"fallback"`
	// Cold marks a decision made on insufficient evidence (the fallback
	// wins); Probe marks a deliberate exploration of an under-sampled or
	// stale alternative.
	Cold  bool `json:"cold,omitempty"`
	Probe bool `json:"probe,omitempty"`
	// Reason explains the decision in one human-readable line.
	Reason string `json:"reason"`
	// Scores snapshots the evidence for every candidate, in the order
	// they were offered.
	Scores []MethodScore `json:"scores,omitempty"`
}

// SetInfo describes one mined attribute set.
type SetInfo struct {
	Key   string   `json:"key"`
	Attrs []string `json:"attrs"`
	// Uses counts queries that wanted this set; LastVersion is the
	// dataset version at its most recent use.
	Uses        uint64 `json:"uses"`
	LastVersion uint64 `json:"last_version"`
	// Prewarmed marks sets whose partitioning the advisor built (or
	// adopted) during a maintenance pass.
	Prewarmed bool `json:"prewarmed,omitempty"`
}

// Stats is a point-in-time snapshot of the advisor's counters.
type Stats struct {
	Outcomes  uint64 `json:"outcomes"`
	Shapes    int    `json:"shapes"`
	Decisions uint64 `json:"decisions"`
	Cold      uint64 `json:"cold_decisions"`
	Probes    uint64 `json:"probes"`
	Sets      int    `json:"sets_tracked"`
	HotSets   int    `json:"hot_sets"`
}

// methodStats is the EWMA evidence for one (shape, method) pair.
type methodStats struct {
	N          uint64  `json:"n"`
	MS         float64 `json:"ms"`
	Fail       float64 `json:"fail"`
	Backtracks float64 `json:"backtracks"`
	GapN       uint64  `json:"gap_n,omitempty"`
	Gap        float64 `json:"gap,omitempty"`
	LastSeq    uint64  `json:"last_seq"`
}

// shapeState is everything tracked for one query shape.
type shapeState struct {
	Methods    map[string]*methodStats `json:"methods"`
	BestObj    float64                 `json:"best_obj,omitempty"`
	HasBest    bool                    `json:"has_best,omitempty"`
	Maximize   bool                    `json:"maximize,omitempty"`
	SinceProbe uint64                  `json:"since_probe,omitempty"`
	LastSeq    uint64                  `json:"last_seq"`
}

// setState is the mined record of one attribute set.
type setState struct {
	Attrs       []string `json:"attrs"`
	Uses        uint64   `json:"uses"`
	LastVersion uint64   `json:"last_version"`
	LastSeq     uint64   `json:"last_seq"`
	Prewarmed   bool     `json:"prewarmed,omitempty"`
}

// Advisor is one session's adaptive state. Safe for concurrent use.
type Advisor struct {
	cfg Config

	mu        sync.Mutex
	seq       uint64 // logical clock: every Observe/Decide/ObserveSet tick
	outcomes  uint64
	decisions uint64
	cold      uint64
	probes    uint64
	shapes    map[string]*shapeState
	sets      map[string]*setState
}

// New returns an advisor with the given configuration (zero-valued
// fields get defaults).
func New(cfg Config) *Advisor {
	return &Advisor{
		cfg:    cfg.withDefaults(),
		shapes: make(map[string]*shapeState),
		sets:   make(map[string]*setState),
	}
}

func (a *Advisor) shapeLocked(key string) *shapeState {
	ss := a.shapes[key]
	if ss == nil {
		ss = &shapeState{Methods: make(map[string]*methodStats)}
		a.shapes[key] = ss
	}
	return ss
}

// Observe records one execution outcome.
func (a *Advisor) Observe(o Outcome) {
	if o.Shape == "" || o.Method == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	a.outcomes++
	ss := a.shapeLocked(o.Shape)
	ss.LastSeq = a.seq
	ms := ss.Methods[o.Method]
	if ms == nil {
		ms = &methodStats{}
		ss.Methods[o.Method] = ms
	}
	ms.N++
	ms.LastSeq = a.seq
	ewma := func(cur, x float64, first bool) float64 {
		if first {
			return x
		}
		return a.cfg.Alpha*x + (1-a.cfg.Alpha)*cur
	}
	first := ms.N == 1
	ms.MS = ewma(ms.MS, o.SolveMS, first)
	ms.Backtracks = ewma(ms.Backtracks, float64(o.Backtracks), first)
	fail := 0.0
	switch {
	case o.Failed:
		fail = 1
	case o.Truncated:
		fail = 0.5
	}
	ms.Fail = ewma(ms.Fail, fail, first)
	if o.HasObjective && !o.Failed && !o.Infeasible &&
		!math.IsNaN(o.Objective) && !math.IsInf(o.Objective, 0) {
		if !ss.HasBest || betterObj(o.Maximize, o.Objective, ss.BestObj) {
			ss.BestObj, ss.HasBest, ss.Maximize = o.Objective, true, o.Maximize
		}
		g := gapOf(ss.Maximize, o.Objective, ss.BestObj)
		ms.Gap = ewma(ms.Gap, g, ms.GapN == 0)
		ms.GapN++
	}
	a.trimShapesLocked()
}

func betterObj(maximize bool, x, best float64) bool {
	if maximize {
		return x > best
	}
	return x < best
}

// gapOf is the relative shortfall of obj against the best objective
// observed for the shape (0 when obj is at least as good; absolute when
// best is ~0).
func gapOf(maximize bool, obj, best float64) float64 {
	diff := obj - best
	if maximize {
		diff = best - obj
	}
	if diff <= 0 || math.IsNaN(diff) {
		return 0
	}
	if den := math.Abs(best); den > 1e-12 {
		return diff / den
	}
	return diff
}

// score is the penalized time the decision loop minimizes.
func (a *Advisor) score(ms *methodStats) float64 {
	return ms.MS * (1 + a.cfg.FailPenalty*ms.Fail)
}

// Decide picks the method for one prepared statement. fallback is what
// the fixed planner heuristic chose (always among candidates); the
// candidate order breaks ties and orders probes, so callers must keep
// it deterministic.
func (a *Advisor) Decide(shape, fallback string, candidates []string) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	a.decisions++
	ss := a.shapeLocked(shape)
	ss.LastSeq = a.seq
	dec := Decision{Method: fallback, Fallback: fallback}
	for _, m := range candidates {
		sc := MethodScore{Method: m}
		if ms := ss.Methods[m]; ms != nil {
			sc.N, sc.MeanMS, sc.FailRate, sc.Gap = ms.N, ms.MS, ms.Fail, ms.Gap
			sc.Score = a.score(ms)
		}
		dec.Scores = append(dec.Scores, sc)
	}
	min := uint64(a.cfg.MinSamples)
	fb := ss.Methods[fallback]
	if fb == nil || fb.N < min {
		var n uint64
		if fb != nil {
			n = fb.N
		}
		a.cold++
		dec.Cold = true
		dec.Reason = fmt.Sprintf("cold: %d/%d runs observed for %s; using the planner heuristic", n, min, fallback)
		return dec
	}
	// Probe under-sampled alternatives before trusting any comparison.
	for _, m := range candidates {
		if m == fallback {
			continue
		}
		ms := ss.Methods[m]
		if ms == nil || ms.N < min {
			var n uint64
			if ms != nil {
				n = ms.N
			}
			a.probes++
			ss.SinceProbe = 0
			dec.Method = m
			dec.Probe = true
			dec.Reason = fmt.Sprintf("probe: %s has %d/%d runs observed", m, n, min)
			return dec
		}
	}
	// Every candidate is sampled: exploit the lowest penalized time among
	// methods whose observed objective gap stays within tolerance (all of
	// them, if none qualifies). The fallback is considered first, so ties
	// keep the heuristic's choice.
	ordered := make([]string, 0, len(candidates))
	ordered = append(ordered, fallback)
	for _, m := range candidates {
		if m != fallback {
			ordered = append(ordered, m)
		}
	}
	pick, eligible := "", false
	var pickScore float64
	for pass := 0; pass < 2 && pick == ""; pass++ {
		for _, m := range ordered {
			ms := ss.Methods[m]
			if pass == 0 && ms.Gap > a.cfg.GapTolerance {
				continue
			}
			if sc := a.score(ms); pick == "" || sc < pickScore {
				pick, pickScore = m, sc
				eligible = pass == 0
			}
		}
	}
	dec.Method = pick
	best := ss.Methods[pick]
	if pick == fallback {
		dec.Reason = fmt.Sprintf("observed: fallback %s ≈%.1fms (n=%d) remains best of %d candidates", pick, best.MS, best.N, len(candidates))
	} else {
		dec.Reason = fmt.Sprintf("observed: %s ≈%.1fms (n=%d) beats fallback %s ≈%.1fms (n=%d)",
			pick, best.MS, best.N, fallback, fb.MS, fb.N)
	}
	if !eligible {
		dec.Reason += fmt.Sprintf(" (all candidates exceed the %.0f%% objective-gap tolerance)", a.cfg.GapTolerance*100)
	}
	// Staleness refresh: after ProbeEvery consecutive exploits on this
	// shape, re-observe the least recently seen alternative.
	ss.SinceProbe++
	if len(ordered) > 1 && ss.SinceProbe >= a.cfg.ProbeEvery {
		stale, staleSeq := "", uint64(math.MaxUint64)
		for _, m := range ordered {
			if m == pick {
				continue
			}
			if ms := ss.Methods[m]; ms.LastSeq < staleSeq {
				stale, staleSeq = m, ms.LastSeq
			}
		}
		if stale != "" {
			a.probes++
			ss.SinceProbe = 0
			dec.Method = stale
			dec.Probe = true
			dec.Reason = fmt.Sprintf("probe: refreshing %s (stale for %d decisions)", stale, a.cfg.ProbeEvery)
		}
	}
	return dec
}

// trimShapesLocked evicts least-recently-seen shapes past the cap.
func (a *Advisor) trimShapesLocked() {
	for len(a.shapes) > a.cfg.MaxShapes {
		victim, victimSeq := "", uint64(math.MaxUint64)
		for k, ss := range a.shapes {
			if ss.LastSeq < victimSeq {
				victim, victimSeq = k, ss.LastSeq
			}
		}
		delete(a.shapes, victim)
	}
}

// ObserveSet records one query's demand for a partitioning attribute
// set — the input to the hot-set miner.
func (a *Advisor) ObserveSet(key string, attrs []string, version uint64) {
	if key == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	st := a.sets[key]
	if st == nil {
		st = &setState{Attrs: append([]string(nil), attrs...)}
		a.sets[key] = st
	}
	st.Uses++
	st.LastVersion = version
	st.LastSeq = a.seq
	for len(a.sets) > a.cfg.MaxSets {
		victim, victimSeq := "", uint64(math.MaxUint64)
		for k, s := range a.sets {
			if !s.Prewarmed && s.LastSeq < victimSeq {
				victim, victimSeq = k, s.LastSeq
			}
		}
		if victim == "" {
			break // every tracked set is prewarmed; nothing safe to forget
		}
		delete(a.sets, victim)
	}
}

// HotSets returns the attribute sets recurring often enough to pre-warm,
// most-used first (ties broken by key for determinism).
func (a *Advisor) HotSets() []SetInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []SetInfo
	for k, st := range a.sets {
		if st.Uses >= a.cfg.HotUses {
			out = append(out, a.setInfoLocked(k, st))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Uses != out[j].Uses {
			return out[i].Uses > out[j].Uses
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func (a *Advisor) setInfoLocked(key string, st *setState) SetInfo {
	return SetInfo{
		Key:         key,
		Attrs:       append([]string(nil), st.Attrs...),
		Uses:        st.Uses,
		LastVersion: st.LastVersion,
		Prewarmed:   st.Prewarmed,
	}
}

// SetInfo looks up one mined set (ok=false when never observed).
func (a *Advisor) SetInfo(key string) (SetInfo, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.sets[key]
	if st == nil {
		return SetInfo{}, false
	}
	return a.setInfoLocked(key, st), true
}

// EvictionOrder sorts keys least-recently-used first — the order a
// budget-bound caller should evict warm partitionings in. Keys the
// advisor never saw sort first (nothing argues for keeping them).
func (a *Advisor) EvictionOrder(keys []string) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := append([]string(nil), keys...)
	seqOf := func(k string) uint64 {
		if st := a.sets[k]; st != nil {
			return st.LastSeq
		}
		return 0
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := seqOf(out[i]), seqOf(out[j])
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	return out
}

// MarkPrewarmed records that the set's partitioning is advisor-managed
// (built or adopted by a maintenance pass); ClearPrewarmed undoes it on
// eviction. Prewarmed sets may serve covered subsets (see paq).
func (a *Advisor) MarkPrewarmed(key string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.sets[key]
	if st == nil {
		st = &setState{}
		a.sets[key] = st
	}
	st.Prewarmed = true
}

// ClearPrewarmed marks the set's partitioning as no longer warm.
func (a *Advisor) ClearPrewarmed(key string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := a.sets[key]; st != nil {
		st.Prewarmed = false
	}
}

// IsPrewarmed reports whether the set is advisor-managed warm.
func (a *Advisor) IsPrewarmed(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.sets[key]
	return st != nil && st.Prewarmed
}

// PrewarmedKeys lists the advisor-managed warm set keys, sorted.
func (a *Advisor) PrewarmedKeys() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for k, st := range a.sets {
		if st.Prewarmed {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the advisor's counters.
func (a *Advisor) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Stats{
		Outcomes:  a.outcomes,
		Shapes:    len(a.shapes),
		Decisions: a.decisions,
		Cold:      a.cold,
		Probes:    a.probes,
		Sets:      len(a.sets),
	}
	for _, s := range a.sets {
		if s.Uses >= a.cfg.HotUses {
			st.HotSets++
		}
	}
	return st
}

// persistedState is the advisor's durable form (JSON inside the store's
// framed sidecar file). The configuration is NOT persisted: a restart
// keeps the evidence but follows the current process's tuning.
type persistedState struct {
	Seq       uint64                 `json:"seq"`
	Outcomes  uint64                 `json:"outcomes"`
	Decisions uint64                 `json:"decisions"`
	Cold      uint64                 `json:"cold"`
	Probes    uint64                 `json:"probes"`
	Shapes    map[string]*shapeState `json:"shapes"`
	Sets      map[string]*setState   `json:"sets"`
}

// MarshalState serializes the advisor's evidence for persistence.
func (a *Advisor) MarshalState() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return json.Marshal(persistedState{
		Seq:       a.seq,
		Outcomes:  a.outcomes,
		Decisions: a.decisions,
		Cold:      a.cold,
		Probes:    a.probes,
		Shapes:    a.shapes,
		Sets:      a.sets,
	})
}

// RestoreState replaces the advisor's evidence with a previously
// marshaled state. The state is advisory: callers should treat an error
// as "start cold", never as a recovery failure.
func (a *Advisor) RestoreState(data []byte) error {
	var ps persistedState
	if err := json.Unmarshal(data, &ps); err != nil {
		return fmt.Errorf("advisor: undecodable state: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq = ps.Seq
	a.outcomes = ps.Outcomes
	a.decisions = ps.Decisions
	a.cold = ps.Cold
	a.probes = ps.Probes
	a.shapes = make(map[string]*shapeState)
	for k, ss := range ps.Shapes {
		if ss == nil {
			continue
		}
		if ss.Methods == nil {
			ss.Methods = make(map[string]*methodStats)
		}
		for m, mst := range ss.Methods {
			if mst == nil {
				delete(ss.Methods, m)
			}
		}
		a.shapes[k] = ss
	}
	a.sets = make(map[string]*setState)
	for k, st := range ps.Sets {
		if st != nil {
			a.sets[k] = st
		}
	}
	a.trimShapesLocked()
	return nil
}
