package advisor

import (
	"fmt"
	"testing"
)

func feed(a *Advisor, shape, method string, ms float64, n int) {
	for i := 0; i < n; i++ {
		a.Observe(Outcome{Shape: shape, Method: method, SolveMS: ms,
			HasObjective: true, Objective: 10, Maximize: false})
	}
}

// TestDecideColdThenProbeThenExploit walks the full bandit loop: cold
// until the fallback has MinSamples, probe the alternative until it
// does, then exploit the faster method.
func TestDecideColdThenProbeThenExploit(t *testing.T) {
	a := New(Config{MinSamples: 3})
	cands := []string{"direct", "sketchrefine"}

	for i := 0; i < 3; i++ {
		dec := a.Decide("q", "direct", cands)
		if !dec.Cold || dec.Method != "direct" {
			t.Fatalf("decision %d: want cold fallback, got %+v", i, dec)
		}
		a.Observe(Outcome{Shape: "q", Method: "direct", SolveMS: 10,
			HasObjective: true, Objective: 10})
	}
	for i := 0; i < 3; i++ {
		dec := a.Decide("q", "direct", cands)
		if !dec.Probe || dec.Method != "sketchrefine" {
			t.Fatalf("decision %d: want probe of sketchrefine, got %+v", i, dec)
		}
		a.Observe(Outcome{Shape: "q", Method: "sketchrefine", SolveMS: 1,
			HasObjective: true, Objective: 10})
	}
	dec := a.Decide("q", "direct", cands)
	if dec.Cold || dec.Probe || dec.Method != "sketchrefine" {
		t.Fatalf("want exploit of the faster sketchrefine, got %+v", dec)
	}
	if dec.Fallback != "direct" {
		t.Fatalf("fallback not carried: %+v", dec)
	}
	if len(dec.Scores) != 2 || dec.Scores[0].N != 3 || dec.Scores[1].N != 3 {
		t.Fatalf("scores snapshot wrong: %+v", dec.Scores)
	}
}

// TestGapToleranceDisqualifies: a faster method whose observed
// objectives are beyond the gap tolerance never wins exploitation.
func TestGapToleranceDisqualifies(t *testing.T) {
	a := New(Config{MinSamples: 2, GapTolerance: 0.10})
	// direct: slow but optimal (objective 10, minimizing).
	feed(a, "q", "direct", 50, 2)
	// sketchrefine: 10x faster but 90% worse objectives.
	for i := 0; i < 2; i++ {
		a.Observe(Outcome{Shape: "q", Method: "sketchrefine", SolveMS: 5,
			HasObjective: true, Objective: 19, Maximize: false})
	}
	dec := a.Decide("q", "direct", []string{"direct", "sketchrefine"})
	if dec.Method != "direct" {
		t.Fatalf("gap-gated method won anyway: %+v", dec)
	}
}

// TestFailurePenalty: timeouts make a nominally fast method lose.
func TestFailurePenalty(t *testing.T) {
	a := New(Config{MinSamples: 2, FailPenalty: 10})
	feed(a, "q", "direct", 10, 2)
	for i := 0; i < 2; i++ {
		a.Observe(Outcome{Shape: "q", Method: "sketchrefine", SolveMS: 5, Failed: true})
	}
	dec := a.Decide("q", "direct", []string{"direct", "sketchrefine"})
	if dec.Method != "direct" {
		t.Fatalf("failing method won: %+v", dec)
	}
}

// TestStalenessProbe: after ProbeEvery exploits, the loser is
// re-observed once, then exploitation resumes.
func TestStalenessProbe(t *testing.T) {
	a := New(Config{MinSamples: 1, ProbeEvery: 3})
	feed(a, "q", "direct", 1, 1)
	feed(a, "q", "sketchrefine", 50, 1)
	cands := []string{"direct", "sketchrefine"}
	probes := 0
	for i := 0; i < 8; i++ {
		dec := a.Decide("q", "direct", cands)
		if dec.Probe {
			probes++
			if dec.Method != "sketchrefine" {
				t.Fatalf("staleness probe picked %q", dec.Method)
			}
			feed(a, "q", "sketchrefine", 50, 1)
		} else if dec.Method != "direct" {
			t.Fatalf("exploit picked %q", dec.Method)
		}
	}
	if probes == 0 {
		t.Fatal("no staleness probe in 8 decisions with ProbeEvery=3")
	}
}

// TestInfeasibleIsNotFailure: definitive infeasibility keeps the
// method's failure rate at zero.
func TestInfeasibleIsNotFailure(t *testing.T) {
	a := New(Config{})
	a.Observe(Outcome{Shape: "q", Method: "direct", SolveMS: 2, Infeasible: true})
	dec := a.Decide("q", "direct", []string{"direct"})
	if len(dec.Scores) != 1 || dec.Scores[0].FailRate != 0 {
		t.Fatalf("infeasible counted as failure: %+v", dec.Scores)
	}
}

// TestHotSetsAndEvictionOrder exercises the miner: recurrence makes a
// set hot, and eviction order is least-recently-used first.
func TestHotSetsAndEvictionOrder(t *testing.T) {
	a := New(Config{HotUses: 3})
	for i := 0; i < 3; i++ {
		a.ObserveSet("price,weight", []string{"price", "weight"}, uint64(10+i))
	}
	a.ObserveSet("mass", []string{"mass"}, 20)
	hot := a.HotSets()
	if len(hot) != 1 || hot[0].Key != "price,weight" || hot[0].Uses != 3 || hot[0].LastVersion != 12 {
		t.Fatalf("hot sets: %+v", hot)
	}
	order := a.EvictionOrder([]string{"mass", "price,weight", "never-seen"})
	want := []string{"never-seen", "price,weight", "mass"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("eviction order %v, want %v", order, want)
		}
	}
}

// TestShapeCapEvictsLRU: the shape table stays bounded.
func TestShapeCapEvictsLRU(t *testing.T) {
	a := New(Config{MaxShapes: 4})
	for i := 0; i < 10; i++ {
		a.Observe(Outcome{Shape: fmt.Sprintf("s%d", i), Method: "direct", SolveMS: 1})
	}
	if got := a.Stats().Shapes; got != 4 {
		t.Fatalf("tracked %d shapes, cap is 4", got)
	}
	// The most recent shape must have survived.
	dec := a.Decide("s9", "direct", []string{"direct"})
	if dec.Scores[0].N != 1 {
		t.Fatalf("most recent shape evicted: %+v", dec.Scores)
	}
}

// TestStateRoundtrip: marshal → restore preserves evidence, prewarmed
// marks, and counters; corrupt input errors without mutating state.
func TestStateRoundtrip(t *testing.T) {
	a := New(Config{MinSamples: 2})
	feed(a, "q", "direct", 7, 3)
	a.ObserveSet("price", []string{"price"}, 42)
	a.MarkPrewarmed("price")
	a.Decide("q", "direct", []string{"direct"})

	data, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{MinSamples: 2})
	if err := b.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	as, bs := a.Stats(), b.Stats()
	if as != bs {
		t.Fatalf("stats diverge after restore: %+v vs %+v", as, bs)
	}
	if !b.IsPrewarmed("price") {
		t.Fatal("prewarmed mark lost")
	}
	si, ok := b.SetInfo("price")
	if !ok || si.Uses != 1 || si.LastVersion != 42 {
		t.Fatalf("set info lost: %+v ok=%v", si, ok)
	}
	dec := b.Decide("q", "direct", []string{"direct"})
	if dec.Cold || dec.Scores[0].N != 3 {
		t.Fatalf("method evidence lost: %+v", dec)
	}

	if err := b.RestoreState([]byte("{not json")); err == nil {
		t.Fatal("corrupt state restored silently")
	}
	if b.Stats().Outcomes != bs.Outcomes {
		t.Fatal("failed restore mutated state")
	}
}

// TestPrewarmedLifecycle: mark → clear → eviction candidates again.
func TestPrewarmedLifecycle(t *testing.T) {
	a := New(Config{})
	a.ObserveSet("a", []string{"a"}, 1)
	a.MarkPrewarmed("a")
	if keys := a.PrewarmedKeys(); len(keys) != 1 || keys[0] != "a" {
		t.Fatalf("prewarmed keys: %v", keys)
	}
	a.ClearPrewarmed("a")
	if a.IsPrewarmed("a") {
		t.Fatal("clear did not stick")
	}
	if keys := a.PrewarmedKeys(); len(keys) != 0 {
		t.Fatalf("prewarmed keys after clear: %v", keys)
	}
}
