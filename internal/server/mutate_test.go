package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/workload"
)

// postJSON posts a raw JSON body and returns status + body.
func postJSON(t *testing.T, client *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// galaxyRowJSON renders one galaxy tuple as the wire form of an insert.
func galaxyRowJSON(objid int64, vals ...float64) []any {
	row := []any{objid}
	for _, v := range vals {
		row = append(row, v)
	}
	return row
}

func TestMutateEndpoint(t *testing.T) {
	srv := New(Config{})
	ds, err := NewDataset("galaxy", workload.Galaxy(400, 3), testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	mutURL := ts.URL + "/datasets/galaxy/rows"

	v0 := ds.Version()

	// Insert two rows (galaxy schema: objid + 10 float attrs).
	ins := MutateRequest{Insert: [][]any{
		galaxyRowJSON(9001, 10, 20, 18, 17.5, 17, 16.8, 16.5, 0.8, 9.5, 16.9),
		galaxyRowJSON(9002, 11, 21, 18.2, 17.6, 17.1, 16.9, 16.6, 0.9, 9.6, 17.0),
	}}
	status, raw := postJSON(t, client, mutURL, ins)
	if status != http.StatusOK {
		t.Fatalf("insert: status %d: %s", status, raw)
	}
	var mr MutateResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Inserted != 2 || len(mr.InsertedRows) != 2 {
		t.Fatalf("insert response %+v", mr)
	}
	if mr.Version <= v0 {
		t.Fatalf("version did not advance: %d -> %d", v0, mr.Version)
	}
	if mr.Maintenance.Inserts != 2 {
		t.Fatalf("maintenance counters %+v, want 2 inserts", mr.Maintenance)
	}

	// Delete one of them and update the other, in one batch.
	upd := MutateRequest{
		Delete: []int{mr.InsertedRows[0]},
		Update: []UpdateRow{{
			Row:    mr.InsertedRows[1],
			Values: galaxyRowJSON(9002, 12, 22, 18.3, 17.7, 17.2, 17.0, 16.7, 1.0, 9.7, 17.1),
		}},
	}
	status, raw = postJSON(t, client, mutURL, upd)
	if status != http.StatusOK {
		t.Fatalf("delete+update: status %d: %s", status, raw)
	}
	var mr2 MutateResponse
	if err := json.Unmarshal(raw, &mr2); err != nil {
		t.Fatal(err)
	}
	if mr2.Deleted != 1 || mr2.Updated != 1 || mr2.Version <= mr.Version {
		t.Fatalf("delete+update response %+v", mr2)
	}

	// The inserted-then-updated tuple is queryable: its objid is unique.
	qStatus, qRaw := mustPostQuery(t, client, ts.URL, QueryRequest{
		Dataset: "galaxy",
		Method:  MethodDirect,
		Query: `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
WHERE G.objid = 9002
SUCH THAT COUNT(P.*) = 1
MAXIMIZE SUM(P.petrorad)`,
	})
	if qStatus != http.StatusOK {
		t.Fatalf("query: status %d: %s", qStatus, qRaw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(qRaw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Infeasible || len(qr.Rows) != 1 || qr.Rows[0].Row != mr.InsertedRows[1] {
		t.Fatalf("query after mutation: %s", qRaw)
	}
	if qr.Objective != "9.7" {
		t.Fatalf("updated tuple not visible: objective %s, want 9.7", qr.Objective)
	}

	// /stats surfaces versions, maintenance, and mutation counters.
	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Mutations != 2 || st.RowsInserted != 2 || st.RowsDeleted != 1 || st.RowsUpdated != 1 {
		t.Fatalf("stats counters: %+v", st)
	}
	dst := st.Datasets["galaxy"]
	if dst.Version != mr2.Version {
		t.Fatalf("stats dataset version %d, want %d", dst.Version, mr2.Version)
	}
	if dst.Maintenance.Inserts != 2 || dst.Maintenance.Deletes != 1 || dst.Maintenance.Updates != 1 {
		t.Fatalf("stats maintenance: %+v", dst.Maintenance)
	}
	if dst.Rows != 401 { // 400 + 2 inserted - 1 deleted
		t.Fatalf("stats live rows %d, want 401", dst.Rows)
	}
}

func TestMutateEndpointRejectsBadBatches(t *testing.T) {
	srv := New(Config{})
	ds, err := NewDataset("galaxy", workload.Galaxy(100, 3), testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	mutURL := ts.URL + "/datasets/galaxy/rows"
	v0 := ds.Version()

	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown dataset", MutateRequest{Delete: []int{0}}, http.StatusNotFound},
		{"empty batch", MutateRequest{}, http.StatusBadRequest},
		{"wrong arity", MutateRequest{Insert: [][]any{{1.0, 2.0}}}, http.StatusBadRequest},
		{"string in float column", MutateRequest{Insert: [][]any{
			galaxyRowJSON(1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)[:10], // truncated → arity error too
		}}, http.StatusBadRequest},
		{"non-integral objid", MutateRequest{Insert: [][]any{
			append([]any{1.5}, galaxyRowJSON(1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)[1:]...),
		}}, http.StatusBadRequest},
		{"out-of-range delete", MutateRequest{Delete: []int{10_000}}, http.StatusBadRequest},
		{"duplicate delete", MutateRequest{Delete: []int{3, 3}}, http.StatusBadRequest},
		{"update of unknown row", MutateRequest{Update: []UpdateRow{{
			Row: 10_000, Values: galaxyRowJSON(1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
		}}}, http.StatusBadRequest},
		{"malformed json", "insert: nope", http.StatusBadRequest},
	}
	for _, tc := range cases {
		url := mutURL
		if tc.name == "unknown dataset" {
			url = ts.URL + "/datasets/nope/rows"
		}
		status, raw := postJSON(t, client, url, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, status, tc.want, raw)
		}
	}
	// GET on the mutation route is not a thing.
	resp, err := client.Get(mutURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET on the mutation route must not succeed")
	}
	if ds.Version() != v0 {
		t.Fatalf("rejected batches mutated the dataset: version %d -> %d", v0, ds.Version())
	}
}

// TestMutateInvalidatesServedCache: a repeated query is served from the
// cache until a mutation moves the dataset version; the stale entry is
// then bypassed and counted in /stats.
func TestMutateInvalidatesServedCache(t *testing.T) {
	srv := New(Config{})
	ds, err := NewDataset("galaxy", workload.Galaxy(300, 9), testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	q := QueryRequest{
		Dataset: "galaxy",
		Method:  MethodDirect,
		Query: `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 3 AND SUM(P.redshift) <= 4
MAXIMIZE SUM(P.petrorad)`,
	}
	var first QueryResponse
	if status, raw := mustPostQuery(t, client, ts.URL, q); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	} else if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	var second QueryResponse
	if _, raw := mustPostQuery(t, client, ts.URL, q); true {
		if err := json.Unmarshal(raw, &second); err != nil {
			t.Fatal(err)
		}
	}
	if !second.Cached {
		t.Fatal("repeat query on unchanged dataset missed the cache")
	}

	// Delete the best row of the cached package.
	del := MutateRequest{Delete: []int{first.Rows[0].Row}}
	if status, raw := postJSON(t, client, ts.URL+"/datasets/galaxy/rows", del); status != http.StatusOK {
		t.Fatalf("delete: status %d: %s", status, raw)
	}
	var third QueryResponse
	if _, raw := mustPostQuery(t, client, ts.URL, q); true {
		if err := json.Unmarshal(raw, &third); err != nil {
			t.Fatal(err)
		}
	}
	if third.Cached {
		t.Fatal("query after mutation served the stale cached package")
	}
	for _, pr := range third.Rows {
		if pr.Row == first.Rows[0].Row {
			t.Fatal("answer contains the deleted row")
		}
	}

	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	inval := uint64(0)
	for _, cs := range st.Datasets["galaxy"].Caches {
		inval += cs.Invalidations
	}
	if inval == 0 {
		t.Fatalf("no invalidations surfaced in /stats: %+v", st.Datasets["galaxy"].Caches)
	}
}
