package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/workload"
)

func durableConfig(dataDir string) DatasetConfig {
	cfg := testDatasetConfig()
	cfg.DataDir = dataDir
	return cfg
}

// TestDrainReopenZeroLoss is the satellite regression: mutations
// acknowledged over HTTP, a graceful drain (Shutdown + CloseDatasets),
// and a fresh server over the same data dir must agree on every row —
// zero acknowledged mutations lost, partitionings warm-started.
func TestDrainReopenZeroLoss(t *testing.T) {
	dataDir := t.TempDir()

	srv := New(Config{})
	ds, err := NewDataset("galaxy", workload.Galaxy(300, 3), durableConfig(dataDir))
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	mutURL := ts.URL + "/datasets/galaxy/rows"

	// Acknowledged mutations: two inserts, one delete, one update.
	status, body := postJSON(t, client, mutURL, MutateRequest{Insert: [][]any{
		galaxyRowJSON(9001, 10, 20, 18, 17.5, 17, 16.8, 16.5, 0.8, 9.5, 16.9),
		galaxyRowJSON(9002, 11, 21, 18.2, 17.6, 17.1, 16.9, 16.6, 0.9, 9.6, 17.0),
	}})
	if status != 200 {
		t.Fatalf("insert: status %d: %s", status, body)
	}
	var ins MutateResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatal(err)
	}
	if status, body = postJSON(t, client, mutURL, MutateRequest{Delete: []int{5}}); status != 200 {
		t.Fatalf("delete: status %d: %s", status, body)
	}
	if status, body = postJSON(t, client, mutURL, MutateRequest{Update: []UpdateRow{{
		Row:    ins.InsertedRows[0],
		Values: galaxyRowJSON(9001, 12, 22, 18.4, 17.8, 17.3, 17.1, 16.8, 1.0, 9.7, 17.1),
	}}}); status != 200 {
		t.Fatalf("update: status %d: %s", status, body)
	}

	wantVersion := ds.Version()
	wantLive := ds.Rel().Live()
	// Close flushes with a compaction (there is one tombstone), which is
	// one more version bump.
	if ds.Rel().Len() != ds.Rel().Live() {
		wantVersion++
	}

	// Graceful shutdown: drain, then flush every durable dataset.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := srv.CloseDatasets(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server recovers the dataset from disk alone.
	srv2 := New(Config{})
	ds2, err := OpenDataset("galaxy", durableConfig(dataDir))
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	srv2.Register(ds2)
	if got := ds2.Version(); got != wantVersion {
		t.Fatalf("recovered version %d, want %d", got, wantVersion)
	}
	if got := ds2.Rel().Live(); got != wantLive {
		t.Fatalf("recovered %d live rows, want %d", got, wantLive)
	}
	d := ds2.DurStats()
	if !d.Durable || d.WarmPartitionings == 0 {
		t.Fatalf("recovery did not warm-start partitionings: %+v", d)
	}
	if d.ReplayedOps != 0 {
		t.Fatalf("graceful drain left %d ops in the WAL", d.ReplayedOps)
	}
	// The recovered dataset serves queries and reports durability in
	// /stats.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	status, body = postJSON(t, ts2.Client(), ts2.URL+"/query", QueryRequest{
		Dataset: "galaxy",
		Query: `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.petrorad)`,
		Method: MethodSketchRefine,
	})
	if status != 200 {
		t.Fatalf("query after recovery: status %d: %s", status, body)
	}
	stats := srv2.Stats()
	dstat, ok := stats.Datasets["galaxy"]
	if !ok || dstat.Durability == nil {
		t.Fatalf("stats carry no durability block: %+v", dstat)
	}
	if dstat.Durability.SnapshotVersion != wantVersion {
		t.Fatalf("stats snapshot_version = %d, want %d", dstat.Durability.SnapshotVersion, wantVersion)
	}
}

// TestMaintainOnceCompactsTombstones is the tombstone-growth
// regression: after a delete-heavy workload pushes the tombstone ratio
// past the threshold, the maintenance pass must shrink the
// memory-resident physical row count.
func TestMaintainOnceCompactsTombstones(t *testing.T) {
	srv := New(Config{TombstoneRatio: 0.25})
	ds, err := NewDataset("galaxy", workload.Galaxy(400, 3), testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)

	// Below the threshold nothing happens.
	if actions := srv.MaintainOnce(); len(actions) != 0 {
		t.Fatalf("maintenance acted below threshold: %v", actions)
	}

	rows := ds.Rel().AllRows()
	if _, err := ds.Session().DeleteRows(rows[:200]); err != nil {
		t.Fatal(err)
	}
	if got := ds.Rel().Len(); got != 400 {
		t.Fatalf("resident rows = %d before maintenance, want 400", got)
	}
	actions := srv.MaintainOnce()
	if len(actions) != 1 {
		t.Fatalf("maintenance actions = %v, want one compaction", actions)
	}
	if got := ds.Rel().Len(); got != 200 {
		t.Fatalf("resident rows = %d after maintenance, want 200 (memory not reclaimed)", got)
	}
	if got := srv.Stats().Compactions; got != 1 {
		t.Fatalf("stats compactions = %d, want 1", got)
	}
	// The dataset still serves: partitionings were remapped, not broken.
	if ms := ds.Session().MaintStats(); ms.Rebuilds != 0 {
		t.Fatalf("compaction caused %d repartitions", ms.Rebuilds)
	}
	if _, _, err := ds.Session().InsertRows(nil); err != nil {
		t.Fatal(err)
	}
}

// TestMaintainOnceSnapshotsBigWAL: a durable dataset whose WAL outgrew
// the limit is snapshotted (log truncated) by the maintenance pass.
func TestMaintainOnceSnapshotsBigWAL(t *testing.T) {
	dataDir := t.TempDir()
	srv := New(Config{WALMaxBytes: 1024, TombstoneRatio: -1})
	ds, err := NewDataset("galaxy", workload.Galaxy(200, 3), durableConfig(dataDir))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	srv.Register(ds)

	full := workload.Galaxy(260, 3)
	var batch [][]any
	for _, i := range full.AllRows()[200:] {
		row := make([]any, full.Schema().Len())
		for c := range row {
			v := full.Value(i, c)
			if n, err := v.Int(); err == nil && c == 0 {
				row[c] = n
				continue
			}
			f, _ := v.Float()
			row[c] = f
		}
		batch = append(batch, row)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if status, body := postJSON(t, ts.Client(), ts.URL+"/datasets/galaxy/rows",
		MutateRequest{Insert: batch}); status != 200 {
		t.Fatalf("insert: status %d: %s", status, body)
	}
	if d := ds.DurStats(); d.WALBytes <= 1024 {
		t.Fatalf("WAL only %d bytes; fixture too small", d.WALBytes)
	}
	actions := srv.MaintainOnce()
	if len(actions) != 1 {
		t.Fatalf("maintenance actions = %v, want one snapshot", actions)
	}
	if d := ds.DurStats(); d.WALBytes > 64 {
		t.Fatalf("WAL still %d bytes after snapshot", d.WALBytes)
	}
	if got := srv.Stats().Snapshots; got != 1 {
		t.Fatalf("stats snapshots = %d, want 1", got)
	}
}
