package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
	"repro/paq"
)

// newObsServer builds a server over one Galaxy dataset, large enough
// that a SketchRefine solve takes long enough to dwarf the per-request
// bookkeeping the trace test bounds.
func newObsServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ds, err := NewDataset("galaxy", workload.Galaxy(2000, 3), testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

const obsFeasibleQuery = `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 3
MAXIMIZE SUM(P.petrorad)`

const obsInfeasibleQuery = `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 3 AND SUM(P.redshift) <= -1
MINIMIZE SUM(P.r)`

// TestMetricsExposition drives a mixed workload and validates the
// /metrics response as a Prometheus 0.0.4 exposition: parseable, types
// declared, histogram buckets monotone (ParseExposition checks all of
// that), and the families the dashboards depend on present with the
// right types and values.
func TestMetricsExposition(t *testing.T) {
	_, ts := newObsServer(t, Config{})
	client := ts.Client()

	for _, q := range []QueryRequest{
		{Dataset: "galaxy", Query: obsFeasibleQuery, Method: MethodDirect},
		{Dataset: "galaxy", Query: obsFeasibleQuery, Method: MethodSketchRefine},
		{Dataset: "galaxy", Query: obsInfeasibleQuery, Method: MethodDirect},
		{Dataset: "nope", Query: obsFeasibleQuery},
	} {
		if _, _, err := postQuery(client, ts.URL, q); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q lacks the exposition version", ct)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}

	for family, typ := range map[string]string{
		"paqld_queries_total":      "counter",
		"paqld_queries_ok_total":   "counter",
		"paqld_infeasible_total":   "counter",
		"paqld_bad_requests_total": "counter",
		"paqld_solves_total":       "counter",
		"paqld_solve_seconds":      "histogram",
		"paqld_qos_in_flight":      "gauge",
		"paqld_qos_admitted_total": "counter",
		"paqld_dataset_rows":       "gauge",
		"paqld_cache_misses_total": "counter",
		"paqld_uptime_seconds":     "gauge",
		"paqld_draining":           "gauge",
	} {
		if got := exp.Types[family]; got != typ {
			t.Errorf("family %s: TYPE %q, want %q", family, got, typ)
		}
	}

	if v, ok := exp.Value("paqld_queries_total", nil); !ok || v != 4 {
		t.Errorf("paqld_queries_total = %v (present %v), want 4", v, ok)
	}
	if v, ok := exp.Value("paqld_solves_total", map[string]string{"method": MethodSketchRefine}); !ok || v != 1 {
		t.Errorf("paqld_solves_total{method=sketchrefine} = %v (present %v), want 1", v, ok)
	}
	if v, ok := exp.Value("paqld_dataset_rows", map[string]string{"dataset": "galaxy"}); !ok || v != 2000 {
		t.Errorf("paqld_dataset_rows{dataset=galaxy} = %v (present %v), want 2000", v, ok)
	}
	// The latency histogram sees the two feasible fresh solves (an
	// infeasibility verdict carries no result to time); its +Inf bucket
	// and _count must agree.
	if v, ok := exp.Value("paqld_solve_seconds_count", nil); !ok || v != 2 {
		t.Errorf("paqld_solve_seconds_count = %v (present %v), want 2", v, ok)
	}
	inf, ok := exp.Value("paqld_solve_seconds_bucket", map[string]string{"le": "+Inf"})
	if !ok || inf != 2 {
		t.Errorf("paqld_solve_seconds_bucket{le=+Inf} = %v (present %v), want 2", inf, ok)
	}
}

// TestStatsMetricsConsistency asserts the no-drift property: /stats and
// /metrics render the same cells, so every counter the JSON reports
// must equal the exposition's sample — not approximately, exactly.
func TestStatsMetricsConsistency(t *testing.T) {
	srv, ts := newObsServer(t, Config{})
	client := ts.Client()
	for _, q := range []QueryRequest{
		{Dataset: "galaxy", Query: obsFeasibleQuery, Method: MethodDirect},
		{Dataset: "galaxy", Query: obsFeasibleQuery, Method: MethodSketchRefine},
		{Dataset: "galaxy", Query: obsFeasibleQuery, Method: MethodSketchRefine}, // cache hit
		{Dataset: "galaxy", Query: obsInfeasibleQuery, Method: MethodSketchRefine},
	} {
		if _, _, err := postQuery(client, ts.URL, q); err != nil {
			t.Fatal(err)
		}
	}

	// Quiesced server: no in-flight requests between the two snapshots,
	// so they must agree exactly.
	st := srv.Stats()
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]uint64{
		"paqld_queries_total":      st.Queries,
		"paqld_queries_ok_total":   st.OK,
		"paqld_infeasible_total":   st.Infeasible,
		"paqld_bad_requests_total": st.BadRequests,
		"paqld_failures_total":     st.Failures,
		"paqld_timeouts_total":     st.Timeouts,
		"paqld_incumbents_total":   st.Incumbents,
		"paqld_backtracks_total":   st.Backtracks,
		"paqld_subproblems_total":  st.Subproblems,
	} {
		if got, ok := exp.Value(name, nil); !ok || got != float64(want) {
			t.Errorf("%s = %v (present %v), /stats says %d", name, got, ok, want)
		}
	}
	for method, want := range st.Methods {
		got, ok := exp.Value("paqld_solves_total", map[string]string{"method": method})
		if !ok || got != float64(want) {
			t.Errorf("paqld_solves_total{method=%s} = %v (present %v), /stats says %d", method, got, ok, want)
		}
	}
	for class, qs := range st.QoS {
		got, ok := exp.Value("paqld_qos_admitted_total", map[string]string{"class": class})
		if !ok || got != float64(qs.Admitted) {
			t.Errorf("paqld_qos_admitted_total{class=%s} = %v (present %v), /stats says %d", class, got, ok, qs.Admitted)
		}
	}
	gal := st.Datasets["galaxy"]
	if got, ok := exp.Value("paqld_dataset_version", map[string]string{"dataset": "galaxy"}); !ok || got != float64(gal.Version) {
		t.Errorf("paqld_dataset_version = %v (present %v), /stats says %d", got, ok, gal.Version)
	}
	for method, cs := range gal.Caches {
		labels := map[string]string{"dataset": "galaxy", "method": method}
		if got, ok := exp.Value("paqld_cache_hits_total", labels); !ok || got != float64(cs.Hits) {
			t.Errorf("paqld_cache_hits_total{method=%s} = %v (present %v), /stats says %d", method, got, ok, cs.Hits)
		}
		if got, ok := exp.Value("paqld_cache_misses_total", labels); !ok || got != float64(cs.Misses) {
			t.Errorf("paqld_cache_misses_total{method=%s} = %v (present %v), /stats says %d", method, got, ok, cs.Misses)
		}
	}

	// The snapshot stamps: Seq strictly increases, and the per-block
	// copies match the top-level one.
	st2 := srv.Stats()
	if st2.Seq <= st.Seq {
		t.Errorf("Stats().Seq did not advance: %d then %d", st.Seq, st2.Seq)
	}
	if st.QoS["solve"].Seq != st.Seq || st.QoS["ingest"].Seq != st.Seq {
		t.Errorf("QoS Seq %d/%d != snapshot Seq %d",
			st.QoS["solve"].Seq, st.QoS["ingest"].Seq, st.Seq)
	}
	if st.QoS["solve"].Since.IsZero() {
		t.Error("QoS Since is zero")
	}
}

// TestQueryTrace is the tracing acceptance test: a "trace": true
// SketchRefine solve returns a span tree whose root duration matches
// the reported solve time within 5%, whose direct children cover at
// least 90% of it, and whose solve subtree shows the sketch → refine
// structure.
func TestQueryTrace(t *testing.T) {
	_, ts := newObsServer(t, Config{})
	client := ts.Client()

	// Warm the partitioning (and advisor) with an untraced twin first,
	// then trace a query it cannot have cached: the traced execution is
	// a fresh solve against fully warm state, so its root is pure solve.
	warm := QueryRequest{Dataset: "galaxy", Query: obsFeasibleQuery, Method: MethodSketchRefine}
	if status, raw, err := postQuery(client, ts.URL, warm); err != nil || status != http.StatusOK {
		t.Fatalf("warm solve: status %d err %v (%s)", status, err, raw)
	}
	traced := QueryRequest{
		Dataset: "galaxy",
		Query: `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 4
MAXIMIZE SUM(P.petrorad)`,
		Method: MethodSketchRefine,
		Trace:  true,
	}
	status, raw := mustPostQuery(t, client, ts.URL, traced)
	if status != http.StatusOK {
		t.Fatalf("traced solve: status %d (%s)", status, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil {
		t.Fatal("trace requested but absent from the response")
	}
	if qr.Cached {
		t.Fatal("traced solve unexpectedly hit the cache; the timing bound below would be meaningless")
	}
	root := qr.Trace
	if root.Name != "execute" {
		t.Fatalf("root span %q, want execute", root.Name)
	}

	// Root duration vs reported solve time: within 5%. TimeMS measures
	// the solve alone, the root adds pin + objective + bookkeeping — all
	// microseconds against a multi-millisecond SketchRefine solve.
	if qr.TimeMS <= 0 {
		t.Fatalf("reported time_ms %v not positive", qr.TimeMS)
	}
	if rel := math.Abs(root.DurationMS-qr.TimeMS) / qr.TimeMS; rel > 0.05 {
		t.Errorf("root span %.3fms vs reported %.3fms: off by %.1f%%, want ≤5%%",
			root.DurationMS, qr.TimeMS, 100*rel)
	}

	// Direct children must account for ≥90% of the root.
	var childSum float64
	for _, c := range root.Children {
		childSum += c.DurationMS
	}
	if childSum < 0.9*root.DurationMS {
		t.Errorf("children cover %.3fms of the root's %.3fms (<90%%)", childSum, root.DurationMS)
	}

	// Structure: the paper's pipeline must be visible in the tree.
	names := map[string]int{}
	var walk func(n *paq.TraceNode)
	walk = func(n *paq.TraceNode) {
		names[n.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	for _, want := range []string{"plan", "pin", "solve", "sketch", "refine", "refine_group", "ilp", "objective"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from the trace (have %v)", want, names)
		}
	}
	if root.Attrs["method"] != MethodSketchRefine {
		t.Errorf("root method attr = %v, want %s", root.Attrs["method"], MethodSketchRefine)
	}

	// An untraced request must not carry a tree.
	status, raw = mustPostQuery(t, client, ts.URL, QueryRequest{
		Dataset: "galaxy", Query: obsFeasibleQuery, Method: MethodDirect,
	})
	if status != http.StatusOK {
		t.Fatalf("untraced solve: status %d (%s)", status, raw)
	}
	var plain QueryResponse
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced request returned a span tree")
	}
}

// TestSlowQueryLog exercises the slow-query log end to end: with a
// 1ns threshold every solve is slow, and each line must be standalone
// JSON carrying the query, plan, dataset version, and span tree.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	_, ts := newObsServer(t, Config{SlowQuery: time.Nanosecond, SlowQueryLog: &buf})
	client := ts.Client()
	status, raw := mustPostQuery(t, client, ts.URL, QueryRequest{
		Dataset: "galaxy", Query: obsFeasibleQuery, Method: MethodSketchRefine,
	})
	if status != http.StatusOK {
		t.Fatalf("solve: status %d (%s)", status, raw)
	}

	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("slow log empty after a slow solve")
	}
	var entry struct {
		TS         time.Time       `json:"ts"`
		Dataset    string          `json:"dataset"`
		Query      string          `json:"query"`
		Method     string          `json:"method"`
		DurationMS float64         `json:"duration_ms"`
		Version    uint64          `json:"version"`
		Plan       json.RawMessage `json:"plan"`
		Trace      *paq.TraceNode  `json:"trace"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow-log line not JSON: %v\n%s", err, line)
	}
	if entry.Dataset != "galaxy" || entry.Method != MethodSketchRefine {
		t.Errorf("entry identifies %q/%q, want galaxy/sketchrefine", entry.Dataset, entry.Method)
	}
	if entry.Query != obsFeasibleQuery {
		t.Errorf("entry query %q, want the posted text", entry.Query)
	}
	if entry.DurationMS <= 0 || entry.TS.IsZero() {
		t.Errorf("entry lacks timing: duration %v ts %v", entry.DurationMS, entry.TS)
	}
	if len(entry.Plan) == 0 || string(entry.Plan) == "null" {
		t.Error("entry lacks the plan")
	}
	if entry.Trace == nil || entry.Trace.Name != "execute" {
		t.Errorf("entry lacks the span tree (got %+v)", entry.Trace)
	}

	// The threshold gates the log: an explain request never solves, so
	// it must not log.
	buf.Reset()
	if _, _, err := postQuery(client, ts.URL, QueryRequest{
		Dataset: "galaxy", Query: obsFeasibleQuery, Explain: true,
	}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("explain request wrote a slow-log line: %s", buf.String())
	}
}
