package server

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/relation"
	"repro/paq"
)

// Evaluation methods a dataset serves. NAIVE is deliberately absent: its
// exponential self-join is the paper's cautionary baseline, not something
// a service should expose to untrusted callers. The names resolve
// through paq.ParseMethod — the repository's single source of method
// names.
const (
	MethodDirect       = string(paq.MethodDirect)
	MethodSketchRefine = string(paq.MethodSketchRefine)
)

// DatasetConfig configures dataset registration: the offline
// partitioning warmed at load time and the solver budgets shared by the
// dataset's per-method engines.
type DatasetConfig struct {
	// Attrs are the partitioning attributes. Empty means every numeric
	// column of the relation — a superset of any query's attributes, so
	// SketchRefine can serve arbitrary queries over the dataset.
	Attrs []string
	// TauFrac is the partition size threshold as a fraction of the
	// dataset; 0 means 0.10 (the paper's scalability setting).
	TauFrac float64
	// Workers bounds partition-build concurrency; 0 means GOMAXPROCS.
	Workers int
	// TimeLimit, MaxNodes, and Gap are the per-ILP solver budgets.
	// Zero-valued fields get paqld defaults (30s, 200k nodes, 1e-4 gap).
	TimeLimit time.Duration
	MaxNodes  int
	Gap       float64
	// Seed steers SketchRefine's refinement order. Fixed per dataset so
	// identical queries give identical answers across requests (and match
	// an in-process evaluation with the same seed).
	Seed int64
	// Racers is the number of SketchRefine refinement orders raced per
	// query. 0 or 1 keeps evaluation deterministic; the differential load
	// checker requires 1.
	Racers int
	// DataDir, when non-empty, makes the dataset durable: its WAL and
	// snapshots live in DataDir/<name>. If that directory already holds
	// state, registration recovers from it — the recovered dataset wins
	// over the relation passed to NewDataset (which then only seeds a
	// brand-new store).
	DataDir string
}

// budgetOptions lowers the relation-independent configuration (solver
// budgets, partitioning shape, concurrency) to paq session options.
func (c DatasetConfig) budgetOptions() []paq.Option {
	tau := c.TauFrac
	if tau <= 0 {
		tau = 0.10
	}
	tl := c.TimeLimit
	if tl == 0 {
		tl = 30 * time.Second
	}
	gap := c.Gap
	if gap == 0 {
		gap = 1e-4
	}
	opts := []paq.Option{
		paq.WithTau(tau),
		paq.WithWorkers(c.Workers),
		paq.WithTimeLimit(tl),
		paq.WithGap(gap),
		paq.WithSeed(c.Seed),
		paq.WithRacers(c.Racers),
		paq.WithWarmPartitioning(),
	}
	if c.MaxNodes > 0 {
		opts = append(opts, paq.WithNodeLimit(c.MaxNodes))
	}
	return opts
}

// options lowers the config to paq session options.
func (c DatasetConfig) options(rel *relation.Relation) []paq.Option {
	attrs := c.Attrs
	if len(attrs) == 0 {
		for i := 0; i < rel.Schema().Len(); i++ {
			col := rel.Schema().Col(i)
			if col.Type.Numeric() {
				attrs = append(attrs, col.Name)
			}
		}
	}
	opts := c.budgetOptions()
	if len(attrs) > 0 {
		opts = append(opts, paq.WithPartitionAttrs(attrs...))
	}
	return opts
}

// Dataset is one registered relation wrapped in a warm paq session: the
// offline partitioning is built at registration, and the session's
// per-method solution caches are shared across all requests that hit
// the dataset.
type Dataset struct {
	name    string
	sess    *paq.Session
	created time.Time
	replica atomic.Bool
}

// NewDataset builds a served dataset: it opens a paq session over the
// relation with an eagerly warmed partitioning (the expensive part of
// registration) and per-method solution caches. With DataDir set the
// session is durable — and if the dataset's store directory already
// holds a snapshot, the recovered state replaces rel entirely (its
// partitionings warm-start from disk, skipping the offline build).
func NewDataset(name string, rel *relation.Relation, cfg DatasetConfig) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset has no name")
	}
	if rel == nil || rel.Len() == 0 {
		return nil, fmt.Errorf("server: dataset %q is empty", name)
	}
	opts := cfg.options(rel)
	if cfg.DataDir != "" {
		opts = append(opts, paq.WithDurability(filepath.Join(cfg.DataDir, name)))
	}
	sess, err := paq.Open(paq.Table(rel), opts...)
	if err != nil {
		return nil, fmt.Errorf("server: dataset %q: %w", name, err)
	}
	return &Dataset{name: name, sess: sess, created: time.Now()}, nil
}

// OpenDataset recovers a durable dataset from DataDir/<name> alone — no
// seed relation — for datasets discovered on disk at boot that no flag
// or config mentions anymore. The schema (and with it the partitioning
// attribute universe) comes from the snapshot; cfg supplies the solver
// budgets.
func OpenDataset(name string, cfg DatasetConfig) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset has no name")
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: dataset %q: OpenDataset needs a data dir", name)
	}
	// options(nil) would resolve the partitioning attribute default from
	// the relation, which is not loaded yet; with empty Attrs the warm
	// build resolves the same all-numeric-columns default from the
	// recovered schema and hits the restored partitioning. Explicit
	// Attrs must still be passed through, or the warm build would key on
	// the all-numeric default — missing the restored partitioning, paying
	// a full rebuild at boot, and serving the wrong attribute set.
	opts := append(cfg.budgetOptions(),
		paq.WithDurability(filepath.Join(cfg.DataDir, name)))
	if len(cfg.Attrs) > 0 {
		opts = append(opts, paq.WithPartitionAttrs(cfg.Attrs...))
	}
	sess, err := paq.Open(nil, opts...)
	if err != nil {
		return nil, fmt.Errorf("server: dataset %q: %w", name, err)
	}
	return &Dataset{name: name, sess: sess, created: time.Now()}, nil
}

// NewDatasetFromSession wraps an existing warm session (e.g. one shared
// with an in-process differential checker) as a served dataset. Clone
// the session first if the caches must stay independent.
func NewDatasetFromSession(name string, sess *paq.Session) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset has no name")
	}
	if sess == nil {
		return nil, fmt.Errorf("server: dataset %q has no session", name)
	}
	return &Dataset{name: name, sess: sess, created: time.Now()}, nil
}

// Name returns the dataset's registry name.
func (d *Dataset) Name() string { return d.name }

// Session returns the dataset's paq session.
func (d *Dataset) Session() *paq.Session { return d.sess }

// Created returns when the dataset object was built — the epoch of its
// per-dataset counters, surfaced as the "since" stamp in /stats.
func (d *Dataset) Created() time.Time { return d.created }

// Rel returns the underlying relation.
func (d *Dataset) Rel() *relation.Relation { return d.sess.Rel() }

// Partitioning describes the warm offline partitioning.
func (d *Dataset) Partitioning() (*paq.PartitionInfo, error) { return d.sess.Partitioning() }

// Version returns the dataset's current version (bumped by every row
// mutation).
func (d *Dataset) Version() uint64 { return d.sess.Version() }

// DurStats reports the dataset's durability state (Durable=false for
// in-memory datasets).
func (d *Dataset) DurStats() paq.DurStats { return d.sess.DurStats() }

// SetReplica marks (or unmarks) the dataset as a replication
// follower. A replica applies its leader's WAL by physical row index,
// so its row layout must never be renumbered out from under the
// stream: background maintenance skips compaction and snapshotting for
// it, and Close preserves the layout (the replica's own WAL carries
// any tombstones across a restart). Promotion clears the mark, after
// which the dataset is maintained like any other.
func (d *Dataset) SetReplica(v bool) { d.replica.Store(v) }

// IsReplica reports whether the dataset is a replication follower.
func (d *Dataset) IsReplica() bool { return d.replica.Load() }

// Close flushes a durable dataset (final snapshot) and closes its
// store; a no-op for in-memory datasets. Replicas close without
// compacting (see SetReplica).
func (d *Dataset) Close() error {
	if d.IsReplica() {
		return d.sess.ClosePreservingLayout()
	}
	return d.sess.Close()
}

// Methods lists the methods the dataset serves, sorted.
func (d *Dataset) Methods() []string {
	return []string{MethodDirect, MethodSketchRefine}
}

// serves reports whether the dataset exposes a method.
func (d *Dataset) serves(m paq.Method) bool {
	return m == paq.MethodDirect || m == paq.MethodSketchRefine
}
