package server

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/ilp"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/sketchrefine"
)

// Evaluation methods a dataset serves. NAIVE is deliberately absent: its
// exponential self-join is the paper's cautionary baseline, not something
// a service should expose to untrusted callers.
const (
	MethodDirect       = "direct"
	MethodSketchRefine = "sketchrefine"
)

// DatasetConfig configures dataset registration: the offline
// partitioning warmed at load time and the solver budgets shared by the
// dataset's engines.
type DatasetConfig struct {
	// Attrs are the partitioning attributes. Empty means every Float
	// column of the relation — a superset of any query's attributes, so
	// SketchRefine can serve arbitrary queries over the dataset.
	Attrs []string
	// TauFrac is the partition size threshold as a fraction of the
	// dataset; 0 means 0.10 (the paper's scalability setting).
	TauFrac float64
	// Workers bounds partition-build concurrency; 0 means GOMAXPROCS.
	Workers int
	// Solver is the per-ILP budget for both engines. Zero-valued fields
	// get paqld defaults (30s, 200k nodes, 1e-4 gap).
	Solver ilp.Options
	// Seed steers SketchRefine's refinement order. Fixed per dataset so
	// identical queries give identical answers across requests (and match
	// an in-process evaluation with the same seed).
	Seed int64
	// Racers is the number of SketchRefine refinement orders raced per
	// query. 0 or 1 keeps evaluation deterministic; the differential load
	// checker requires 1.
	Racers int
}

func (c DatasetConfig) withDefaults(rel *relation.Relation) DatasetConfig {
	if len(c.Attrs) == 0 {
		for i := 0; i < rel.Schema().Len(); i++ {
			col := rel.Schema().Col(i)
			if col.Type.Numeric() {
				c.Attrs = append(c.Attrs, col.Name)
			}
		}
	}
	if c.TauFrac <= 0 {
		c.TauFrac = 0.10
	}
	if c.Solver.TimeLimit == 0 {
		c.Solver.TimeLimit = 30 * time.Second
	}
	if c.Solver.MaxNodes == 0 {
		c.Solver.MaxNodes = ilp.DefaultMaxNodes
	}
	if c.Solver.Gap == 0 {
		c.Solver.Gap = 1e-4
	}
	return c
}

// Dataset is one registered relation with its warm partitioning and
// per-method engines. All fields are immutable after construction; the
// engines' solution caches carry the mutable state.
type Dataset struct {
	name    string
	rel     *relation.Relation
	part    *partition.Partitioning
	engines map[string]*engine.Engine
	cfg     DatasetConfig
}

// NewDataset builds a served dataset: it partitions the relation up
// front (the warm partitioning every SketchRefine query reuses) and
// instantiates one engine per method, each with its own solution cache
// shared across all requests that hit the dataset.
func NewDataset(name string, rel *relation.Relation, cfg DatasetConfig) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset has no name")
	}
	if rel == nil || rel.Len() == 0 {
		return nil, fmt.Errorf("server: dataset %q is empty", name)
	}
	cfg = cfg.withDefaults(rel)
	tau := int(float64(rel.Len())*cfg.TauFrac) + 1
	part, err := partition.Build(rel, partition.Options{
		Attrs:         cfg.Attrs,
		SizeThreshold: tau,
		Workers:       cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("server: partitioning dataset %q: %w", name, err)
	}
	return NewDatasetFromPartitioning(name, rel, part, cfg)
}

// NewDatasetFromPartitioning builds a served dataset over a partitioning
// that was already built for the relation (e.g. loaded from a warm
// snapshot, or shared with an in-process differential checker — partition
// building is the expensive part of registration). The engines and their
// caches are always fresh.
func NewDatasetFromPartitioning(name string, rel *relation.Relation, part *partition.Partitioning, cfg DatasetConfig) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset has no name")
	}
	if rel == nil || rel.Len() == 0 {
		return nil, fmt.Errorf("server: dataset %q is empty", name)
	}
	if part == nil || part.Rel != rel {
		return nil, fmt.Errorf("server: dataset %q: partitioning was built over a different relation", name)
	}
	cfg = cfg.withDefaults(rel)
	ds := &Dataset{
		name: name,
		rel:  rel,
		part: part,
		cfg:  cfg,
		engines: map[string]*engine.Engine{
			MethodDirect: engine.New(engine.Direct{Opt: cfg.Solver}),
			MethodSketchRefine: engine.New(engine.SketchRefine{
				Part:   part,
				Opt:    sketchrefine.Options{Solver: cfg.Solver, HybridSketch: true, Seed: cfg.Seed},
				Racers: cfg.Racers,
			}),
		},
	}
	return ds, nil
}

// Name returns the dataset's registry name.
func (d *Dataset) Name() string { return d.name }

// Rel returns the underlying relation.
func (d *Dataset) Rel() *relation.Relation { return d.rel }

// Partitioning returns the warm offline partitioning.
func (d *Dataset) Partitioning() *partition.Partitioning { return d.part }

// SetEngine overrides the engine for one method (used by tests to
// inject instrumented solvers). It must be called before the dataset is
// registered with a serving Server.
func (d *Dataset) SetEngine(method string, eng *engine.Engine) {
	d.engines[method] = eng
}

// Engine returns the engine serving a method, or nil.
func (d *Dataset) Engine(method string) *engine.Engine { return d.engines[method] }

// Methods lists the methods the dataset serves, sorted.
func (d *Dataset) Methods() []string {
	out := make([]string, 0, len(d.engines))
	for m := range d.engines {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
