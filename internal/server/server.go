// Package server implements paqld, the long-lived package-query service:
// a JSON-over-HTTP API that prepares, plans, and executes PaQL text
// against a registry of preloaded datasets with warm partitionings.
//
// The paper's thesis is that package queries belong *inside* the data
// system; this package is the serving layer that thesis implies. Each
// dataset is registered once — a paq session opened, its quad-tree
// partitioning built offline — and then every request reuses the warm
// session and its shared per-method solution caches, so repeated
// queries cost one cache lookup instead of an ILP solve.
//
// The server is built to survive adversarial, concurrent workloads:
//
//   - no user input can panic the process — parse/translate errors are
//     400s, unknown datasets 404s, infeasibility a structured verdict;
//   - admission control is two QoS classes — solve and ingest token
//     buckets with per-dataset fairness — so a mutation storm cannot
//     starve queries of admission (solves additionally run against
//     pinned relation snapshots, so ingest never blocks them mid-solve);
//     overflow of either class is refused immediately with 429 so load
//     sheds at the edge instead of piling onto the solver;
//   - every request carries a deadline mapped to context cancellation
//     that reaches the simplex iterations of an in-flight solve;
//   - shutdown drains in-flight solves before returning.
//
// EXPLAIN is first-class: a request with "explain": true returns the
// statement's typed plan — chosen method and why, partitioning shape,
// ILP size — without solving. Executions count their improving ILP
// incumbents (the anytime-results stream), surfaced per response and
// in aggregate at GET /stats.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/paq"
)

// Config bounds the server's concurrency and per-request deadlines.
type Config struct {
	// MaxInFlight bounds concurrently evaluating queries; 0 means
	// GOMAXPROCS.
	MaxInFlight int
	// MaxQueued bounds requests admitted beyond MaxInFlight, waiting for
	// a solve slot. 0 means 4×MaxInFlight; negative means no queue (a
	// request either gets a slot immediately or is refused).
	MaxQueued int
	// IngestMaxInFlight bounds concurrently applying mutation batches —
	// the ingest QoS class, separate from the solve class so a
	// saturating mutation stream cannot consume solve slots (nor the
	// reverse). 0 means MaxInFlight.
	IngestMaxInFlight int
	// IngestMaxQueued bounds mutation requests waiting for an ingest
	// slot. 0 means 4×IngestMaxInFlight; negative means no queue.
	IngestMaxQueued int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines; 0 means 5m.
	MaxTimeout time.Duration
	// TombstoneRatio is the tombstoned fraction of a dataset's physical
	// rows above which the maintenance pass compacts it (reclaiming the
	// memory and, on durable datasets, snapshotting the result). 0 means
	// 0.25; negative disables ratio-driven compaction.
	TombstoneRatio float64
	// WALMaxBytes is the write-ahead log size above which the
	// maintenance pass snapshots a durable dataset (truncating the log).
	// 0 means 8 MiB; negative disables size-driven snapshots.
	WALMaxBytes int64
	// SlowQuery is the slow-query log threshold: a solve at or above it
	// emits one structured JSON line (query, plan, dataset version, span
	// tree) to SlowQueryLog. 0 disables the log. Enabling it turns on
	// tracing for every solve — the log wants the span tree — so set it
	// well above the typical solve time.
	SlowQuery time.Duration
	// SlowQueryLog receives the slow-query lines; nil disables the log
	// regardless of SlowQuery.
	SlowQueryLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 4 * c.MaxInFlight
	}
	if c.MaxQueued < 0 {
		c.MaxQueued = 0
	}
	if c.IngestMaxInFlight <= 0 {
		c.IngestMaxInFlight = c.MaxInFlight
	}
	if c.IngestMaxQueued == 0 {
		c.IngestMaxQueued = 4 * c.IngestMaxInFlight
	}
	if c.IngestMaxQueued < 0 {
		c.IngestMaxQueued = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.TombstoneRatio == 0 {
		c.TombstoneRatio = 0.25
	}
	if c.WALMaxBytes == 0 {
		c.WALMaxBytes = 8 << 20
	}
	return c
}

// Server is the paqld request handler: a dataset registry plus admission
// control and service counters. Create with New, register datasets, then
// serve Handler with net/http.
type Server struct {
	cfg   Config
	start time.Time

	mu       sync.RWMutex
	datasets map[string]*Dataset

	// solve and ingest are the two admission (QoS) classes: queries and
	// mutation batches hold slots from separate token buckets with
	// per-dataset fairness inside each (see qos.go).
	solve  *qosClass
	ingest *qosClass

	// lifeMu guards the drain state. A plain WaitGroup would be unsafe:
	// WaitGroup.Add may not race Wait, and a request can arrive at the
	// exact instant the last in-flight solve wakes a draining Shutdown.
	lifeMu   sync.Mutex
	active   int           // requests inside handleQuery
	draining bool          // no new requests admitted
	idle     chan struct{} // closed when draining and active == 0

	// replMu guards the replication hooks a repl.Node installs: a
	// mutation gate (refuse writes on followers and fenced leaders), a
	// stats block surfaced under /stats "replication", and the typed
	// gauge snapshot /metrics renders.
	replMu      sync.RWMutex
	mutGate     func() error
	replStats   func() any
	replMetrics func() ReplMetrics

	// reg is the metric registry behind GET /metrics. The counters below
	// are cells registered on it, so /stats and /metrics render the same
	// memory and cannot disagree.
	reg          *obs.Registry
	ctr          counters
	solveSeconds *obs.Histogram
	slow         *obs.SlowLog

	// methodCtr holds the per-method solve counters (the /metrics
	// "paqld_solves_total{method=...}" family), created on first use.
	methodMu  sync.Mutex
	methodCtr map[string]*obs.Counter

	// statsSeq numbers Stats() snapshots; the durability/QoS/advisor
	// blocks carry it so a scraper interleaving /stats polls can order
	// them without trusting wall clocks.
	statsSeq atomic.Uint64
}

// counters are the monotonically increasing service statistics. Every
// *obs.Counter field is a registry cell (see newCounters); solveNanos
// stays a plain atomic because it is a signed nanosecond sum rendered
// as a derived collector.
type counters struct {
	queries     *obs.Counter
	ok          *obs.Counter
	infeasible  *obs.Counter
	truncated   *obs.Counter
	badRequest  *obs.Counter
	rejected    *obs.Counter
	timeouts    *obs.Counter
	failures    *obs.Counter
	explains    *obs.Counter
	incumbents  *obs.Counter
	solveNanos  atomic.Int64
	backtracks  *obs.Counter
	subproblems *obs.Counter
	// Mutation-path counters (POST /datasets/{name}/rows).
	mutations    *obs.Counter
	rowsInserted *obs.Counter
	rowsDeleted  *obs.Counter
	rowsUpdated  *obs.Counter
	// Background-maintenance counters (MaintainOnce).
	compactions *obs.Counter
	snapshots   *obs.Counter
}

// New creates an empty server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		datasets:  make(map[string]*Dataset),
		solve:     newQoSClass("solve", cfg.MaxInFlight, cfg.MaxQueued),
		ingest:    newQoSClass("ingest", cfg.IngestMaxInFlight, cfg.IngestMaxQueued),
		reg:       reg,
		ctr:       newCounters(reg),
		slow:      obs.NewSlowLog(cfg.SlowQueryLog, cfg.SlowQuery),
		methodCtr: make(map[string]*obs.Counter),
	}
	s.solveSeconds = reg.Histogram("paqld_solve_seconds",
		"Wall-clock solver time per fresh (non-cached) solve.", obs.DefBuckets)
	s.registerCollectors()
	return s
}

// Register adds a dataset to the registry. Registering a name twice
// replaces the previous dataset (warm caches and all).
func (s *Server) Register(ds *Dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[ds.Name()] = ds
}

// Deregister removes a dataset from the registry (a no-op for unknown
// names). It does not close the dataset — the caller owns that.
func (s *Server) Deregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.datasets, name)
}

// Dataset looks up a registered dataset, or nil.
func (s *Server) Dataset(name string) *Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.datasets[name]
}

// SetMutationGate installs a check run before every mutation request;
// a non-nil error refuses the batch with 503 (the client should retry
// against the current leader). The replication layer uses it to make
// followers and fenced ex-leaders read-only. Pass nil to clear.
func (s *Server) SetMutationGate(gate func() error) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	s.mutGate = gate
}

// checkMutationGate returns the installed gate's verdict (nil when no
// gate is installed).
func (s *Server) checkMutationGate() error {
	s.replMu.RLock()
	gate := s.mutGate
	s.replMu.RUnlock()
	if gate == nil {
		return nil
	}
	return gate()
}

// SetReplStats installs the provider of the /stats "replication"
// block (role, epoch, per-dataset lag). Pass nil to clear.
func (s *Server) SetReplStats(fn func() any) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	s.replStats = fn
}

// Handler returns the HTTP API:
//
//	POST /query                 evaluate (or explain) a PaQL query (QueryRequest → QueryResponse)
//	POST /datasets/{name}/rows  mutate a dataset (MutateRequest → MutateResponse)
//	GET  /stats                 service and cache statistics
//	GET  /metrics               Prometheus text exposition (same cells as /stats)
//	GET  /datasets              registered datasets
//	GET  /healthz               liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("POST /datasets/{name}/rows", s.handleMutate)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return mux
}

// enter registers a request with the drain tracker; it reports false
// when the server is draining and the request must be refused.
func (s *Server) enter() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

// leave is enter's counterpart; the last request out wakes Shutdown.
func (s *Server) leave() {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.active--
	if s.active == 0 && s.draining && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
}

// Shutdown drains: new queries are refused with 503, and the call blocks
// until every in-flight solve has finished or ctx expires. It does not
// close the HTTP listener — pair it with http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifeMu.Lock()
	s.draining = true
	idle := s.idle
	if idle == nil {
		idle = make(chan struct{})
		if s.active == 0 {
			close(idle)
		} else {
			s.idle = idle
		}
	}
	s.lifeMu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.lifeMu.Lock()
		active := s.active
		s.lifeMu.Unlock()
		return fmt.Errorf("server: shutdown with %d request(s) still in flight: %w",
			active, ctx.Err())
	}
}

// isDraining reports the drain state (for /stats and admission).
func (s *Server) isDraining() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	return s.draining
}

// MaintainOnce runs one background-maintenance pass over every
// dataset: a dataset whose tombstone ratio exceeds the configured
// threshold is compacted (reclaiming resident memory), and a durable
// dataset whose WAL has outgrown WALMaxBytes is snapshotted (folding
// the log away). It returns a human-readable action log, one entry per
// dataset acted on. paqld calls it on a timer; tests call it directly.
func (s *Server) MaintainOnce() []string {
	s.mu.RLock()
	datasets := make([]*Dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		datasets = append(datasets, ds)
	}
	s.mu.RUnlock()
	var actions []string
	for _, ds := range datasets {
		if ds.IsReplica() {
			// A replica's layout mirrors its leader's byte-for-byte;
			// compacting or snapshotting it locally would renumber rows out
			// from under the replication stream. Its leader does the
			// reclaiming; the follower picks it up through resync.
			continue
		}
		// Len/Live are plain fields mutated under the session's write
		// lock; read them under the read side, not bare (this runs on a
		// timer goroutine concurrent with HTTP mutations).
		var phys, live int
		ds.Session().View(func(rel *relation.Relation) { phys, live = rel.Len(), rel.Live() })
		if s.cfg.TombstoneRatio > 0 && phys > 0 &&
			float64(phys-live)/float64(phys) > s.cfg.TombstoneRatio {
			reclaimed, err := ds.Session().Compact()
			if err != nil {
				actions = append(actions, fmt.Sprintf("%s: compact failed: %v", ds.Name(), err))
				continue
			}
			s.ctr.compactions.Add(1)
			actions = append(actions, fmt.Sprintf("%s: compacted %d tombstoned rows (%d resident)", ds.Name(), reclaimed, phys-reclaimed))
			continue // a durable compact already snapshotted (empty WAL)
		}
		d := ds.DurStats()
		needSnap := d.Durable && (d.Poisoned ||
			(s.cfg.WALMaxBytes > 0 && d.WALBytes > s.cfg.WALMaxBytes))
		if needSnap {
			if err := ds.Session().Snapshot(); err != nil {
				actions = append(actions, fmt.Sprintf("%s: snapshot failed: %v", ds.Name(), err))
				continue
			}
			s.ctr.snapshots.Add(1)
			actions = append(actions, fmt.Sprintf("%s: snapshotted (WAL was %d bytes)", ds.Name(), d.WALBytes))
		}
	}
	return actions
}

// AdviseOnce runs one advisor maintenance pass over every dataset:
// partitionings for hot attribute sets are pre-warmed, cold warm sets
// beyond the budget evicted, and (on durable datasets) the advisor's
// evidence persisted. Replicas are included — pre-warming only builds
// in-memory quad-trees over the existing layout, never renumbers rows,
// and a follower that is promoted wants its hot sets already warm. It
// returns a human-readable action log; paqld calls it on the
// maintenance timer, tests call it directly.
func (s *Server) AdviseOnce() []string {
	s.mu.RLock()
	datasets := make([]*Dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		datasets = append(datasets, ds)
	}
	s.mu.RUnlock()
	var actions []string
	for _, ds := range datasets {
		pass := ds.Session().AdvisorMaintain()
		if len(pass.Prewarmed) == 0 && len(pass.Shared) == 0 && len(pass.Evicted) == 0 {
			continue
		}
		msg := ds.Name() + ":"
		if len(pass.Prewarmed) > 0 {
			msg += fmt.Sprintf(" prewarmed %v", pass.Prewarmed)
		}
		if len(pass.Shared) > 0 {
			msg += fmt.Sprintf(" shared %v", pass.Shared)
		}
		if len(pass.Evicted) > 0 {
			msg += fmt.Sprintf(" evicted %v", pass.Evicted)
		}
		if pass.Persisted {
			msg += " (persisted)"
		}
		actions = append(actions, msg)
	}
	return actions
}

// CloseDatasets flushes every durable dataset (final snapshot) and
// closes its store — the last step of a graceful shutdown, after the
// drain: no acknowledged mutation may be lost across the restart. The
// first error is returned; every dataset is still attempted.
func (s *Server) CloseDatasets() error {
	s.mu.RLock()
	datasets := make([]*Dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		datasets = append(datasets, ds)
	}
	s.mu.RUnlock()
	var first error
	for _, ds := range datasets {
		if err := ds.Close(); err != nil && first == nil {
			first = fmt.Errorf("server: closing dataset %q: %w", ds.Name(), err)
		}
	}
	return first
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	// Dataset names a registered dataset.
	Dataset string `json:"dataset"`
	// Query is the PaQL text.
	Query string `json:"query"`
	// Method selects the evaluation strategy: "direct" (the default),
	// "sketchrefine", or "auto" (the planner chooses and the response's
	// plan/stats say why).
	Method string `json:"method,omitempty"`
	// Explain, when true, returns the statement's plan without solving.
	Explain bool `json:"explain,omitempty"`
	// TimeoutMS bounds the evaluation; 0 applies the server default. The
	// value is capped at the server's MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IncludeTuples adds the materialized package tuples to the response
	// (row indices and multiplicities are always included).
	IncludeTuples bool `json:"include_tuples,omitempty"`
	// Trace returns the execution's span tree in the response — where
	// the request's time went: plan, snapshot pin, solve (sketch, each
	// refine group, ILP iterations), objective.
	Trace bool `json:"trace,omitempty"`
}

// PackageRow is one distinct tuple of the answer package.
type PackageRow struct {
	Row  int `json:"row"`
	Mult int `json:"mult"`
}

// EvalStatsJSON is the wire form of paq.Stats.
type EvalStatsJSON struct {
	Subproblems  int     `json:"subproblems"`
	Vars         int     `json:"vars"`
	Rows         int     `json:"rows"`
	SolverNodes  int     `json:"solver_nodes"`
	LPIterations int     `json:"lp_iterations"`
	Backtracks   int     `json:"backtracks"`
	SolveTimeMS  float64 `json:"solve_time_ms"`
	Truncated    bool    `json:"truncated"`
}

func statsJSON(st *paq.Stats) *EvalStatsJSON {
	if st == nil {
		return nil
	}
	return &EvalStatsJSON{
		Subproblems:  st.Subproblems,
		Vars:         st.Vars,
		Rows:         st.Rows,
		SolverNodes:  st.SolverNodes,
		LPIterations: st.LPIterations,
		Backtracks:   st.Backtracks,
		SolveTimeMS:  float64(st.SolveTime) / float64(time.Millisecond),
		Truncated:    st.Truncated,
	}
}

// QueryResponse is the body of a successful (HTTP 200) POST /query. A
// 200 carries a package, an infeasibility verdict, or — for explain
// requests — the plan; all are definitive answers to the request.
type QueryResponse struct {
	Dataset string `json:"dataset"`
	Method  string `json:"method"`
	// Plan is the typed EXPLAIN output (explain requests only).
	Plan *paq.Plan `json:"plan,omitempty"`
	// Infeasible reports a proven (or SketchRefine-reported) "no such
	// package" verdict; Objective and Rows are absent.
	Infeasible bool `json:"infeasible,omitempty"`
	// FalseInfeasible marks a SketchRefine infeasibility that Theorem 4
	// does not make definitive (Section 4.4); a DIRECT retry could
	// still find a package.
	FalseInfeasible bool `json:"false_infeasible,omitempty"`
	// Objective is the objective value formatted with strconv 'g'/-1 —
	// byte-comparable across server and in-process evaluations.
	Objective string  `json:"objective,omitempty"`
	ObjValue  float64 `json:"obj_value,omitempty"`
	Size      int     `json:"size,omitempty"`
	Distinct  int     `json:"distinct,omitempty"`
	// Version is the dataset version the solve was pinned at — the
	// MVCC read point; every value above reflects exactly that version.
	Version uint64 `json:"version,omitempty"`
	// Truncated reports a budget-limited incumbent: feasible, but
	// possibly suboptimal. Mirrors paqlcli's nonzero-exit contract.
	Truncated bool `json:"truncated,omitempty"`
	Cached    bool `json:"cached,omitempty"`
	// Incumbents counts the improving ILP incumbents found during the
	// solve (0 for cache hits) — the anytime-results signal.
	Incumbents int            `json:"incumbents,omitempty"`
	Rows       []PackageRow   `json:"rows,omitempty"`
	Tuples     [][]string     `json:"tuples,omitempty"`
	Stats      *EvalStatsJSON `json:"stats,omitempty"`
	TimeMS     float64        `json:"time_ms"`
	// Trace is the execution's span tree ("trace": true requests only).
	Trace *paq.TraceNode `json:"trace,omitempty"`
}

// errorResponse is the body of every non-200 response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before WriteHeader: an unencodable value (e.g. a NaN float
	// that slipped into a response) must become a structured 500, not a
	// 200 with an empty body.
	body, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		body, _ = json.Marshal(errorResponse{Error: fmt.Sprintf("encoding response: %v", err)})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body) // a client that hung up is not a server error
	_, _ = w.Write([]byte("\n"))
}

func (s *Server) failf(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// admit claims a slot from the given QoS class for one request of the
// named dataset. It returns a release function, or writes the refusal
// (429 on class-queue overflow, 504 when the deadline fires while
// queued) and returns nil.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, q *qosClass, dataset string) func() {
	release, ref := q.admit(ctx, dataset)
	if ref == nil {
		return release
	}
	switch ref.status {
	case http.StatusTooManyRequests:
		s.ctr.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
	case http.StatusGatewayTimeout:
		s.ctr.timeouts.Add(1)
	}
	s.failf(w, ref.status, "%s", ref.msg)
	return nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.failf(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !s.enter() {
		s.failf(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	defer s.leave()
	s.ctr.queries.Add(1)

	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.ctr.badRequest.Add(1)
		s.failf(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Query == "" {
		s.ctr.badRequest.Add(1)
		s.failf(w, http.StatusBadRequest, "empty query")
		return
	}
	ds := s.Dataset(req.Dataset)
	if ds == nil {
		s.ctr.badRequest.Add(1)
		s.failf(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	methodName := req.Method
	if methodName == "" {
		methodName = MethodDirect
	}
	method, err := paq.ParseMethod(methodName)
	if err != nil || !ds.serves(method) && method != paq.MethodAuto {
		s.ctr.badRequest.Add(1)
		s.failf(w, http.StatusBadRequest, "unknown method %q (have %v)", req.Method, ds.Methods())
		return
	}

	// Prepare before admission: parse/translate/plan is cheap against a
	// warm partitioning, and a malformed query should not consume a
	// solve slot.
	stmt, err := ds.Session().Prepare(req.Query, paq.WithMethod(method))
	if err != nil {
		var pe *paq.ParseError
		if errors.As(err, &pe) || errors.Is(err, paq.ErrTypeMismatch) {
			s.ctr.badRequest.Add(1)
			s.failf(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.ctr.failures.Add(1)
		s.failf(w, http.StatusInternalServerError, "prepare: %v", err)
		return
	}

	if req.Explain {
		// EXPLAIN answers from the plan alone — no solve, no slot.
		s.ctr.explains.Add(1)
		writeJSON(w, http.StatusOK, QueryResponse{
			Dataset: req.Dataset,
			Method:  string(stmt.Method()),
			Plan:    stmt.Plan(),
		})
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		// Clamp in milliseconds before converting: a huge timeout_ms
		// would overflow the Duration multiplication, wrap negative, and
		// skip the cap.
		if maxMS := s.cfg.MaxTimeout.Milliseconds(); req.TimeoutMS > maxMS {
			req.TimeoutMS = maxMS
		}
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	release := s.admit(ctx, w, s.solve, req.Dataset)
	if release == nil {
		return
	}
	defer release()

	// Tracing costs one span tree per request; pay it only when the
	// client asked for it or the slow-query log may want it.
	var execOpts []paq.ExecOption
	if req.Trace || s.slow != nil {
		execOpts = append(execOpts, paq.WithTrace())
	}
	res, execErr := stmt.Execute(ctx, execOpts...)
	s.respond(w, req, stmt, res, execErr)
}

// respond translates an execution outcome into the HTTP response.
func (s *Server) respond(w http.ResponseWriter, req QueryRequest, stmt *paq.Stmt, res *paq.Result, execErr error) {
	resp := QueryResponse{
		Dataset: req.Dataset,
		Method:  string(stmt.Method()),
	}
	if res != nil {
		if st := res.Stats; st != nil {
			s.ctr.solveNanos.Add(int64(st.SolveTime))
			s.ctr.backtracks.Add(uint64(st.Backtracks))
			s.ctr.subproblems.Add(uint64(st.Subproblems))
		}
		s.ctr.incumbents.Add(uint64(res.Incumbents))
		if !res.Cached {
			s.solveSeconds.Observe(res.Time.Seconds())
		}
		resp.Cached = res.Cached
		resp.Incumbents = res.Incumbents
		resp.Stats = statsJSON(res.Stats)
		resp.TimeMS = float64(res.Time) / float64(time.Millisecond)
		if req.Trace {
			resp.Trace = res.Trace()
		}
		// Snapshotting the span tree is the expensive part of a slow-log
		// line; check the threshold before building the entry.
		if s.slow != nil && res.Time >= s.slow.Threshold() {
			e := obs.SlowEntry{
				Dataset:    req.Dataset,
				Query:      req.Query,
				Method:     string(stmt.Method()),
				DurationMS: float64(res.Time) / float64(time.Millisecond),
				Version:    res.Version,
				Cached:     res.Cached,
				Plan:       stmt.Plan(),
				Trace:      res.Trace(),
			}
			if execErr != nil {
				e.Error = execErr.Error()
			}
			s.slow.Observe(e)
		}
	}
	if execErr != nil {
		switch {
		case errors.Is(execErr, paq.ErrInfeasible):
			// A definitive verdict about the query, not a failure
			// (ErrFalseInfeasible satisfies ErrInfeasible too).
			s.ctr.infeasible.Add(1)
			s.methodCounter(string(stmt.Method())).Inc()
			resp.Infeasible = true
			resp.FalseInfeasible = errors.Is(execErr, paq.ErrFalseInfeasible)
			writeJSON(w, http.StatusOK, resp)
		case errors.Is(execErr, paq.ErrTimeout):
			s.ctr.timeouts.Add(1)
			s.failf(w, http.StatusGatewayTimeout, "evaluation deadline exceeded")
		case errors.Is(execErr, context.Canceled):
			// The client went away; nothing useful to write.
			s.ctr.timeouts.Add(1)
			s.failf(w, http.StatusGatewayTimeout, "request canceled")
		default:
			// Solver budget exhaustion and other evaluation failures:
			// the query was valid but this budget could not answer it.
			s.ctr.failures.Add(1)
			s.failf(w, http.StatusUnprocessableEntity, "evaluation failed: %v", execErr)
		}
		return
	}

	obj := res.Objective
	if math.IsNaN(obj) || math.IsInf(obj, 0) {
		// NaN/Inf cells can enter via loaded CSV data; JSON cannot carry
		// them and the value is meaningless as an optimum.
		s.ctr.failures.Add(1)
		s.failf(w, http.StatusUnprocessableEntity, "objective evaluated to %v (non-finite data in the aggregated columns)", obj)
		return
	}
	s.ctr.ok.Add(1)
	s.methodCounter(string(stmt.Method())).Inc()
	if res.Truncated {
		s.ctr.truncated.Add(1)
		resp.Truncated = true
	}
	resp.Objective = strconv.FormatFloat(obj, 'g', -1, 64)
	resp.ObjValue = obj
	resp.Size = res.Size
	resp.Distinct = res.Distinct
	resp.Version = res.Version
	resp.Rows = make([]PackageRow, len(res.Rows))
	for i, row := range res.Rows {
		resp.Rows[i] = PackageRow{Row: row, Mult: res.Mult[i]}
	}
	if req.IncludeTuples {
		// Materialization reads the live relation after Execute released
		// the dataset lock; take it again so a concurrent mutation cannot
		// tear the tuple values mid-serialization.
		s.Dataset(req.Dataset).Session().View(func(*relation.Relation) {
			mat := res.Package().Materialize("package")
			nCols := mat.Schema().Len()
			resp.Tuples = make([][]string, 0, mat.Len())
			for i := 0; i < mat.Len(); i++ {
				tup := make([]string, nCols)
				for c := range tup {
					tup[c] = mat.Value(i, c).String()
				}
				resp.Tuples = append(resp.Tuples, tup)
			}
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	UptimeMS float64 `json:"uptime_ms"`
	// Seq numbers this snapshot: strictly increasing across Stats()
	// calls, echoed into the QoS / durability / advisor blocks so a
	// scraper can order interleaved polls without trusting wall clocks.
	Seq         uint64 `json:"seq"`
	Queries     uint64 `json:"queries"`
	OK          uint64 `json:"ok"`
	Infeasible  uint64 `json:"infeasible"`
	Truncated   uint64 `json:"truncated"`
	BadRequests uint64 `json:"bad_requests"`
	Rejected    uint64 `json:"rejected"`
	Timeouts    uint64 `json:"timeouts"`
	Failures    uint64 `json:"failures"`
	Explains    uint64 `json:"explains"`
	// Incumbents is the total number of improving ILP incumbents found
	// across all executions — the anytime-results counter.
	Incumbents uint64 `json:"incumbents_total"`
	// Mutations counts POST /datasets/{name}/rows requests; RowsInserted
	// / RowsDeleted / RowsUpdated the rows they carried.
	Mutations    uint64 `json:"mutations"`
	RowsInserted uint64 `json:"rows_inserted"`
	RowsDeleted  uint64 `json:"rows_deleted"`
	RowsUpdated  uint64 `json:"rows_updated"`
	// Compactions and Snapshots count background-maintenance actions
	// (tombstone reclamation and WAL-driven snapshots).
	Compactions uint64 `json:"compactions"`
	Snapshots   uint64 `json:"snapshots"`
	// InFlight and Queued mirror the solve class's occupancy (the
	// pre-QoS wire fields); QoS carries the full per-class breakdown
	// ("solve" and "ingest" buckets with per-dataset fairness counters).
	InFlight int                 `json:"in_flight"`
	Queued   int                 `json:"queued"`
	QoS      map[string]QoSStats `json:"qos"`
	Draining bool                `json:"draining"`
	// Methods is the completed-solve count per evaluation method — the
	// same cells /metrics renders as paqld_solves_total{method}.
	Methods     map[string]uint64       `json:"methods,omitempty"`
	SolveTimeMS float64                 `json:"solve_time_ms_total"`
	Backtracks  uint64                  `json:"backtracks_total"`
	Subproblems uint64                  `json:"subproblems_total"`
	Datasets    map[string]DatasetStats `json:"datasets"`
	// Replication is the repl.Node's status block (role, epoch,
	// per-dataset tail lag); absent when the node is not replicated.
	Replication any `json:"replication,omitempty"`
}

// DatasetStats summarizes one dataset and its per-method caches.
type DatasetStats struct {
	Rows int `json:"rows"`
	// Version is the dataset's mutation counter (see MutateResponse).
	Version uint64 `json:"version"`
	Groups  int    `json:"groups"`
	Tau     int    `json:"tau"`
	// Maintenance is the cumulative incremental partition-maintenance
	// work performed on the dataset's live partitionings.
	Maintenance MaintJSON `json:"maintenance"`
	// Pinning reports how this dataset's solves interacted with the
	// mutation lock while pinning their snapshots: pin count, and the
	// total / worst-case read-lock wait. max_wait_ms staying bounded by
	// one batch apply is the observable "ingest never blocks solves".
	Pinning PinJSON `json:"pinning"`
	// Durability describes the dataset's persistence state (absent for
	// in-memory datasets).
	Durability *DurJSON              `json:"durability,omitempty"`
	Caches     map[string]CacheStats `json:"caches"`
	// WarmSets lists the dataset's warm partitionings with the advisor's
	// evidence (uses, last-used version, prewarmed/pinned) — what makes
	// advisor evictions observable. Advisor is the adaptive planner's
	// counter block.
	WarmSets []paq.WarmSet `json:"warm_sets,omitempty"`
	Advisor  *AdvisorJSON  `json:"advisor,omitempty"`
}

// AdvisorJSON is the /stats wire form of paq.AdvisorStats, stamped
// with the dataset's registration time and the snapshot sequence.
type AdvisorJSON struct {
	paq.AdvisorStats
	Since time.Time `json:"since"`
	Seq   uint64    `json:"seq"`
}

// DurJSON is the wire form of paq.DurStats.
type DurJSON struct {
	// Since is when the dataset was registered with this server; Seq is
	// the /stats snapshot sequence (see StatsResponse.Seq).
	Since time.Time `json:"since"`
	Seq   uint64    `json:"seq"`
	// WALBytes is the current write-ahead log size — the bytes a crash
	// would replay.
	WALBytes int64 `json:"wal_bytes"`
	// SnapshotVersion is the dataset version of the latest snapshot;
	// SnapshotAgeMS how long ago it was written.
	SnapshotVersion uint64  `json:"snapshot_version"`
	SnapshotAgeMS   float64 `json:"snapshot_age_ms"`
	Snapshots       uint64  `json:"snapshots"`
	Compactions     uint64  `json:"compactions"`
	// ReplayedOps counts the row mutations replayed from the WAL when
	// the dataset recovered at boot; WarmPartitionings the partitionings
	// warm-started from its snapshot (offline builds the boot skipped).
	ReplayedOps       uint64 `json:"replayed_ops"`
	WarmPartitionings int    `json:"warm_partitionings"`
	WALAppends        uint64 `json:"wal_appends"`
	WALSyncs          uint64 `json:"wal_syncs"`
	// Poisoned reports a compaction whose snapshot failed: mutations
	// are refused until the maintenance pass snapshots successfully.
	Poisoned bool `json:"poisoned,omitempty"`
}

func durJSON(d paq.DurStats, since time.Time, seq uint64) *DurJSON {
	if !d.Durable {
		return nil
	}
	return &DurJSON{
		Since:             since,
		Seq:               seq,
		WALBytes:          d.WALBytes,
		SnapshotVersion:   d.SnapshotVersion,
		SnapshotAgeMS:     float64(d.SnapshotAge) / float64(time.Millisecond),
		Snapshots:         d.Snapshots,
		Compactions:       d.Compactions,
		ReplayedOps:       d.ReplayedOps,
		WarmPartitionings: d.WarmPartitionings,
		WALAppends:        d.WALAppends,
		WALSyncs:          d.WALSyncs,
		Poisoned:          d.Poisoned,
	}
}

// PinJSON is the wire form of paq.PinStats.
type PinJSON struct {
	Pins        uint64  `json:"pins"`
	WaitMSTotal float64 `json:"wait_ms_total"`
	MaxWaitMS   float64 `json:"max_wait_ms"`
}

func pinJSON(p paq.PinStats) PinJSON {
	return PinJSON{
		Pins:        p.Pins,
		WaitMSTotal: float64(p.WaitTotal) / float64(time.Millisecond),
		MaxWaitMS:   float64(p.WaitMax) / float64(time.Millisecond),
	}
}

// CacheStats is the wire form of paq.CacheStats.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Invalidations counts cached solutions reclaimed because the
	// dataset moved past the version they were solved at.
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
}

// Stats snapshots the service counters (also served at GET /stats).
func (s *Server) Stats() StatsResponse {
	seq := s.statsSeq.Add(1)
	solveStats := s.solve.stats()
	ingestStats := s.ingest.stats()
	solveStats.Seq, ingestStats.Seq = seq, seq
	resp := StatsResponse{
		UptimeMS:     float64(time.Since(s.start)) / float64(time.Millisecond),
		Seq:          seq,
		Queries:      s.ctr.queries.Value(),
		OK:           s.ctr.ok.Value(),
		Infeasible:   s.ctr.infeasible.Value(),
		Truncated:    s.ctr.truncated.Value(),
		BadRequests:  s.ctr.badRequest.Value(),
		Rejected:     s.ctr.rejected.Value(),
		Timeouts:     s.ctr.timeouts.Value(),
		Failures:     s.ctr.failures.Value(),
		Explains:     s.ctr.explains.Value(),
		Incumbents:   s.ctr.incumbents.Value(),
		Mutations:    s.ctr.mutations.Value(),
		RowsInserted: s.ctr.rowsInserted.Value(),
		RowsDeleted:  s.ctr.rowsDeleted.Value(),
		RowsUpdated:  s.ctr.rowsUpdated.Value(),
		Compactions:  s.ctr.compactions.Value(),
		Snapshots:    s.ctr.snapshots.Value(),
		InFlight:     solveStats.InFlight,
		Queued:       solveStats.Queued,
		QoS:          map[string]QoSStats{"solve": solveStats, "ingest": ingestStats},
		Draining:     s.isDraining(),
		Methods:      s.methodMix(),
		SolveTimeMS:  float64(s.ctr.solveNanos.Load()) / float64(time.Millisecond),
		Backtracks:   s.ctr.backtracks.Value(),
		Subproblems:  s.ctr.subproblems.Value(),
		Datasets:     make(map[string]DatasetStats),
	}
	s.replMu.RLock()
	if s.replStats != nil {
		resp.Replication = s.replStats()
	}
	s.replMu.RUnlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, ds := range s.datasets {
		dst := DatasetStats{
			Rows:        ds.Rel().Live(),
			Version:     ds.Version(),
			Maintenance: maintJSON(ds.Session().MaintStats()),
			Pinning:     pinJSON(ds.Session().PinStats()),
			Durability:  durJSON(ds.DurStats(), ds.Created(), seq),
			Caches:      make(map[string]CacheStats),
		}
		if pi, err := ds.Partitioning(); err == nil {
			dst.Groups = pi.Groups
			dst.Tau = pi.Tau
		}
		for m, cs := range ds.Session().CacheStats() {
			dst.Caches[string(m)] = CacheStats{Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions, Invalidations: cs.Invalidations, Entries: cs.Entries}
		}
		dst.WarmSets = ds.Session().WarmSets()
		if as := ds.Session().AdvisorStats(); as.Enabled {
			dst.Advisor = &AdvisorJSON{AdvisorStats: as, Since: ds.Created(), Seq: seq}
		}
		resp.Datasets[name] = dst
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// DatasetInfo is one entry of GET /datasets.
type DatasetInfo struct {
	Name    string   `json:"name"`
	Rows    int      `json:"rows"`
	Version uint64   `json:"version"`
	Columns []string `json:"columns"`
	Attrs   []string `json:"partition_attrs"`
	Groups  int      `json:"groups"`
	Methods []string `json:"methods"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.datasets))
	for _, ds := range s.datasets {
		cols := make([]string, ds.Rel().Schema().Len())
		for i := range cols {
			col := ds.Rel().Schema().Col(i)
			cols[i] = fmt.Sprintf("%s:%s", col.Name, col.Type)
		}
		info := DatasetInfo{
			Name:    ds.Name(),
			Rows:    ds.Rel().Live(),
			Version: ds.Version(),
			Columns: cols,
			Methods: ds.Methods(),
		}
		if pi, err := ds.Partitioning(); err == nil {
			info.Attrs = pi.Attrs
			info.Groups = pi.Groups
		}
		infos = append(infos, info)
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}
