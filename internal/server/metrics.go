// Prometheus-surface wiring. paqld's /metrics endpoint and its /stats
// JSON render through one obs.Registry: every request-path counter in
// the counters struct IS a registered metric cell, and the dynamic
// families (per-dataset caches, QoS occupancy, replication lag) are
// collectors closing over the same state /stats snapshots — the two
// surfaces cannot drift because there is nothing to drift between.
package server

import (
	"time"

	"repro/internal/obs"
	"repro/paq"
)

// newCounters registers every request-path counter on the registry.
// The returned cells are both the /stats source and the /metrics
// series.
func newCounters(reg *obs.Registry) counters {
	return counters{
		queries:      reg.Counter("paqld_queries_total", "POST /query requests received."),
		ok:           reg.Counter("paqld_queries_ok_total", "Queries answered with a package."),
		infeasible:   reg.Counter("paqld_infeasible_total", "Queries answered with an infeasibility verdict."),
		truncated:    reg.Counter("paqld_truncated_total", "Queries answered with a budget-limited incumbent."),
		badRequest:   reg.Counter("paqld_bad_requests_total", "Malformed requests (parse/translate errors, unknown datasets)."),
		rejected:     reg.Counter("paqld_rejected_total", "Requests refused at admission (429 shed at the edge)."),
		timeouts:     reg.Counter("paqld_timeouts_total", "Requests that hit their deadline (solving or queued)."),
		failures:     reg.Counter("paqld_failures_total", "Evaluation and internal failures."),
		explains:     reg.Counter("paqld_explains_total", "EXPLAIN requests answered from the plan."),
		incumbents:   reg.Counter("paqld_incumbents_total", "Improving ILP incumbents streamed across all solves."),
		backtracks:   reg.Counter("paqld_backtracks_total", "SketchRefine refinement backtracks."),
		subproblems:  reg.Counter("paqld_subproblems_total", "ILP subproblems solved."),
		mutations:    reg.Counter("paqld_mutations_total", "Mutation batches applied."),
		rowsInserted: reg.Counter("paqld_rows_inserted_total", "Rows inserted."),
		rowsDeleted:  reg.Counter("paqld_rows_deleted_total", "Rows deleted."),
		rowsUpdated:  reg.Counter("paqld_rows_updated_total", "Rows updated."),
		compactions:  reg.Counter("paqld_compactions_total", "Maintenance compactions (tombstone reclamation)."),
		snapshots:    reg.Counter("paqld_snapshots_total", "Maintenance snapshots (WAL truncation)."),
	}
}

// methodCounter returns the solve counter for one evaluation method
// (the /metrics method-mix family and the /stats "methods" block read
// the same cells).
func (s *Server) methodCounter(method string) *obs.Counter {
	s.methodMu.Lock()
	defer s.methodMu.Unlock()
	c := s.methodCtr[method]
	if c == nil {
		c = s.reg.Counter("paqld_solves_total",
			"Completed solves (package or infeasibility verdict) by method.",
			obs.Label{Name: "method", Value: method})
		s.methodCtr[method] = c
	}
	return c
}

// methodMix snapshots the per-method solve counts for /stats.
func (s *Server) methodMix() map[string]uint64 {
	s.methodMu.Lock()
	defer s.methodMu.Unlock()
	if len(s.methodCtr) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(s.methodCtr))
	for m, c := range s.methodCtr {
		out[m] = c.Value()
	}
	return out
}

// Metrics returns the server's metric registry, served at GET /metrics.
// paqld adds process-level runtime gauges to it at startup.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SlowLog returns the server's slow-query log (nil when disabled).
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// ReplMetrics is the replication gauge snapshot /metrics renders —
// the typed subset of the /stats "replication" block (which stays
// free-form JSON). A repl.Node installs the provider with
// SetReplMetrics alongside SetReplStats.
type ReplMetrics struct {
	Epoch  uint64
	Leader bool
	Fenced bool
	// Lag is the per-dataset follower version lag (leader − local).
	Lag map[string]uint64
}

// SetReplMetrics installs the replication metrics provider. Pass nil
// to clear; the replication families then render no samples.
func (s *Server) SetReplMetrics(fn func() ReplMetrics) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	s.replMetrics = fn
}

// registerCollectors wires the dynamic metric families: scrape-time
// collectors over the same QoS, dataset, and replication state /stats
// reports.
func (s *Server) registerCollectors() {
	reg := s.reg
	reg.GaugeFunc("paqld_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("paqld_draining", "1 while the server refuses new requests (shutdown drain).",
		func() float64 {
			if s.isDraining() {
				return 1
			}
			return 0
		})
	reg.CollectFunc("paqld_solve_seconds_total", "counter",
		"Cumulative wall-clock solver time.",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.ctr.solveNanos.Load()) / 1e9}}
		})

	// QoS classes: one sample per class from the same stats() snapshot
	// /stats serves.
	qos := func(pick func(QoSStats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			return []obs.Sample{
				{Labels: []obs.Label{{Name: "class", Value: "solve"}}, Value: pick(s.solve.stats())},
				{Labels: []obs.Label{{Name: "class", Value: "ingest"}}, Value: pick(s.ingest.stats())},
			}
		}
	}
	reg.CollectFunc("paqld_qos_in_flight", "gauge", "Requests holding a slot, per QoS class.",
		qos(func(st QoSStats) float64 { return float64(st.InFlight) }))
	reg.CollectFunc("paqld_qos_queued", "gauge", "Requests waiting for a slot, per QoS class.",
		qos(func(st QoSStats) float64 { return float64(st.Queued) }))
	reg.CollectFunc("paqld_qos_admitted_total", "counter", "Requests that claimed a slot, per QoS class.",
		qos(func(st QoSStats) float64 { return float64(st.Admitted) }))
	reg.CollectFunc("paqld_qos_rejected_total", "counter", "Queue-overflow refusals, per QoS class.",
		qos(func(st QoSStats) float64 { return float64(st.Rejected) }))
	reg.CollectFunc("paqld_qos_deadline_expired_total", "counter", "Deadlines fired while queued, per QoS class.",
		qos(func(st QoSStats) float64 { return float64(st.DeadlineExpired) }))
	reg.CollectFunc("paqld_qos_fairness_deferrals_total", "counter", "Waits imposed solely by the fair-share clamp, per QoS class.",
		qos(func(st QoSStats) float64 { return float64(st.FairnessDeferrals) }))
	reg.CollectFunc("paqld_qos_wait_seconds_total", "counter", "Total admission wait, per QoS class.",
		qos(func(st QoSStats) float64 { return st.WaitMSTotal / 1e3 }))
	reg.CollectFunc("paqld_qos_max_wait_seconds", "gauge", "Worst admission wait, per QoS class.",
		qos(func(st QoSStats) float64 { return st.MaxWaitMS / 1e3 }))

	// Per-dataset families. Each collector walks the registry under the
	// read lock and emits one sample per dataset (or per dataset×method
	// for the solution caches).
	ds := func(pick func(*Dataset) float64) func() []obs.Sample {
		return func() []obs.Sample {
			s.mu.RLock()
			defer s.mu.RUnlock()
			out := make([]obs.Sample, 0, len(s.datasets))
			for name, d := range s.datasets {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "dataset", Value: name}},
					Value:  pick(d),
				})
			}
			return out
		}
	}
	reg.CollectFunc("paqld_dataset_rows", "gauge", "Live rows per dataset.",
		ds(func(d *Dataset) float64 { return float64(d.Rel().Live()) }))
	reg.CollectFunc("paqld_dataset_version", "gauge", "Mutation version per dataset.",
		ds(func(d *Dataset) float64 { return float64(d.Version()) }))
	reg.CollectFunc("paqld_pins_total", "counter", "Snapshot pins per dataset.",
		ds(func(d *Dataset) float64 { return float64(d.Session().PinStats().Pins) }))
	reg.CollectFunc("paqld_pin_wait_seconds_total", "counter", "Total pin lock wait per dataset.",
		ds(func(d *Dataset) float64 { return d.Session().PinStats().WaitTotal.Seconds() }))

	cache := func(pick func(paq.CacheStats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			s.mu.RLock()
			defer s.mu.RUnlock()
			var out []obs.Sample
			for name, d := range s.datasets {
				for m, cs := range d.Session().CacheStats() {
					out = append(out, obs.Sample{
						Labels: []obs.Label{
							{Name: "dataset", Value: name},
							{Name: "method", Value: string(m)},
						},
						Value: pick(cs),
					})
				}
			}
			return out
		}
	}
	reg.CollectFunc("paqld_cache_hits_total", "counter", "Solution-cache hits per dataset and method.",
		cache(func(cs paq.CacheStats) float64 { return float64(cs.Hits) }))
	reg.CollectFunc("paqld_cache_misses_total", "counter", "Solution-cache misses per dataset and method.",
		cache(func(cs paq.CacheStats) float64 { return float64(cs.Misses) }))
	reg.CollectFunc("paqld_cache_evictions_total", "counter", "Solution-cache evictions per dataset and method.",
		cache(func(cs paq.CacheStats) float64 { return float64(cs.Evictions) }))
	reg.CollectFunc("paqld_cache_invalidations_total", "counter", "Version-driven solution-cache invalidations per dataset and method.",
		cache(func(cs paq.CacheStats) float64 { return float64(cs.Invalidations) }))
	reg.CollectFunc("paqld_cache_entries", "gauge", "Cached solutions per dataset and method.",
		cache(func(cs paq.CacheStats) float64 { return float64(cs.Entries) }))

	// Durability: samples only for durable datasets.
	dur := func(pick func(paq.DurStats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			s.mu.RLock()
			defer s.mu.RUnlock()
			var out []obs.Sample
			for name, d := range s.datasets {
				st := d.DurStats()
				if !st.Durable {
					continue
				}
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "dataset", Value: name}},
					Value:  pick(st),
				})
			}
			return out
		}
	}
	reg.CollectFunc("paqld_wal_bytes", "gauge", "Write-ahead log size per durable dataset.",
		dur(func(st paq.DurStats) float64 { return float64(st.WALBytes) }))
	reg.CollectFunc("paqld_wal_appends_total", "counter", "WAL appends per durable dataset.",
		dur(func(st paq.DurStats) float64 { return float64(st.WALAppends) }))
	reg.CollectFunc("paqld_wal_syncs_total", "counter", "WAL fsync rounds per durable dataset.",
		dur(func(st paq.DurStats) float64 { return float64(st.WALSyncs) }))
	reg.CollectFunc("paqld_snapshot_version", "gauge", "Latest snapshot's dataset version per durable dataset.",
		dur(func(st paq.DurStats) float64 { return float64(st.SnapshotVersion) }))

	// Advisor: samples only for advisor-enabled datasets.
	adv := func(pick func(paq.AdvisorStats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			s.mu.RLock()
			defer s.mu.RUnlock()
			var out []obs.Sample
			for name, d := range s.datasets {
				st := d.Session().AdvisorStats()
				if !st.Enabled {
					continue
				}
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "dataset", Value: name}},
					Value:  pick(st),
				})
			}
			return out
		}
	}
	reg.CollectFunc("paqld_advisor_decisions_total", "counter", "Adaptive-planner decisions per dataset.",
		adv(func(st paq.AdvisorStats) float64 { return float64(st.Decisions) }))
	reg.CollectFunc("paqld_advisor_cold_decisions_total", "counter", "Decisions made on insufficient evidence per dataset.",
		adv(func(st paq.AdvisorStats) float64 { return float64(st.ColdDecisions) }))
	reg.CollectFunc("paqld_advisor_probes_total", "counter", "Deliberate exploration probes per dataset.",
		adv(func(st paq.AdvisorStats) float64 { return float64(st.Probes) }))
	reg.CollectFunc("paqld_advisor_prewarmed_total", "counter", "Partitionings pre-warmed by the advisor per dataset.",
		adv(func(st paq.AdvisorStats) float64 { return float64(st.Prewarmed) }))
	reg.CollectFunc("paqld_advisor_evicted_total", "counter", "Warm partitionings evicted by the advisor per dataset.",
		adv(func(st paq.AdvisorStats) float64 { return float64(st.Evicted) }))

	// Replication: rendered only while a repl.Node has installed the
	// provider.
	replGauge := func(pick func(ReplMetrics) float64) func() []obs.Sample {
		return func() []obs.Sample {
			s.replMu.RLock()
			fn := s.replMetrics
			s.replMu.RUnlock()
			if fn == nil {
				return nil
			}
			return []obs.Sample{{Value: pick(fn())}}
		}
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	reg.CollectFunc("paqld_repl_epoch", "gauge", "Replication epoch this node believes in.",
		replGauge(func(m ReplMetrics) float64 { return float64(m.Epoch) }))
	reg.CollectFunc("paqld_repl_leader", "gauge", "1 when this node is the leader.",
		replGauge(func(m ReplMetrics) float64 { return b2f(m.Leader) }))
	reg.CollectFunc("paqld_repl_fenced", "gauge", "1 when this node has been fenced by a newer epoch.",
		replGauge(func(m ReplMetrics) float64 { return b2f(m.Fenced) }))
	reg.CollectFunc("paqld_repl_lag", "gauge", "Follower version lag (leader − local) per dataset.",
		func() []obs.Sample {
			s.replMu.RLock()
			fn := s.replMetrics
			s.replMu.RUnlock()
			if fn == nil {
				return nil
			}
			m := fn()
			out := make([]obs.Sample, 0, len(m.Lag))
			for name, lag := range m.Lag {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "dataset", Value: name}},
					Value:  float64(lag),
				})
			}
			return out
		})
}
