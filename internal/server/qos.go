package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// qosClass is one admission token bucket. The server runs two — solve
// (POST /query) and ingest (POST /datasets/{name}/rows) — so a
// saturating mutation stream competes for its own slots and can never
// starve solves of admission, and vice versa. Within a class, slots are
// shared with per-dataset fairness: while any other dataset has
// requests waiting, a dataset is clamped to an equal split of the
// class's slots (minimum one), but a lone-demand dataset may use the
// whole class (the clamp is work-conserving).
type qosClass struct {
	name      string
	max       int // concurrent slots
	maxQueued int // admitted beyond max, waiting for a slot
	since     time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	inFlight int
	queued   int
	held     map[string]int // slots held, per dataset
	demand   map[string]int // held + waiting, per dataset

	admitted  atomic.Uint64
	rejected  atomic.Uint64
	expired   atomic.Uint64 // deadlines fired while queued
	deferrals atomic.Uint64 // waits imposed solely by the fairness clamp
	waitNanos atomic.Int64
	maxWait   atomic.Int64
}

func newQoSClass(name string, max, maxQueued int) *qosClass {
	q := &qosClass{
		name:      name,
		max:       max,
		maxQueued: maxQueued,
		since:     time.Now(),
		held:      make(map[string]int),
		demand:    make(map[string]int),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// fairCapLocked is the most slots one dataset may hold while another
// dataset is waiting: an equal split of the class's slots among the
// datasets currently demanding them, never below one (so every dataset
// always makes progress).
func (q *qosClass) fairCapLocked() int {
	n := len(q.demand)
	if n <= 1 {
		return q.max
	}
	c := q.max / n
	if c < 1 {
		c = 1
	}
	return c
}

// othersWaitingLocked reports whether a dataset other than the given
// one has requests queued (demand beyond its held slots).
func (q *qosClass) othersWaitingLocked(dataset string) bool {
	for d, dem := range q.demand {
		if d != dataset && dem > q.held[d] {
			return true
		}
	}
	return false
}

// canRunLocked reports whether a request for the dataset may claim a
// slot now: the class has capacity, and the dataset is within its fair
// share whenever someone else is waiting.
func (q *qosClass) canRunLocked(dataset string) bool {
	if q.inFlight >= q.max {
		return false
	}
	if q.held[dataset] >= q.fairCapLocked() && q.othersWaitingLocked(dataset) {
		return false
	}
	return true
}

func (q *qosClass) dropDemandLocked(dataset string) {
	if q.demand[dataset]--; q.demand[dataset] <= 0 {
		delete(q.demand, dataset)
	}
}

// qosRefusal is why admission failed, ready to write as an HTTP error.
type qosRefusal struct {
	status int
	msg    string
}

// admit claims a slot for one request of the given dataset, waiting in
// the class's queue when the bucket is exhausted or the dataset is over
// its fair share. It returns a release function, or a refusal (queue
// overflow, or the context's deadline fired while queued).
func (q *qosClass) admit(ctx context.Context, dataset string) (func(), *qosRefusal) {
	q.mu.Lock()
	if q.inFlight+q.queued >= q.max+q.maxQueued {
		q.mu.Unlock()
		q.rejected.Add(1)
		return nil, &qosRefusal{
			status: http.StatusTooManyRequests,
			msg:    fmt.Sprintf("%s admission queue full (%d in flight + queued)", q.name, q.max+q.maxQueued),
		}
	}
	q.queued++
	q.demand[dataset]++
	if !q.canRunLocked(dataset) {
		// The wait below is fairness-imposed when capacity exists but the
		// dataset is clamped to its share; count those separately so the
		// clamp's effect is observable in /stats.
		fairOnly := q.inFlight < q.max
		// Cond waits cannot watch a context, so a watcher broadcasts when
		// the deadline fires; the lock/unlock pair makes sure the waiter
		// is parked (or has re-checked ctx.Err) before the broadcast.
		stop := context.AfterFunc(ctx, func() {
			q.mu.Lock()
			//lint:ignore SA2001 empty critical section pairs the broadcast with parked waiters
			q.mu.Unlock()
			q.cond.Broadcast()
		})
		t0 := time.Now()
		for !q.canRunLocked(dataset) && ctx.Err() == nil {
			q.cond.Wait()
		}
		stop()
		wait := int64(time.Since(t0))
		q.waitNanos.Add(wait)
		for {
			cur := q.maxWait.Load()
			if wait <= cur || q.maxWait.CompareAndSwap(cur, wait) {
				break
			}
		}
		if fairOnly {
			q.deferrals.Add(1)
		}
		if ctx.Err() != nil {
			q.queued--
			q.dropDemandLocked(dataset)
			q.mu.Unlock()
			q.expired.Add(1)
			return nil, &qosRefusal{status: http.StatusGatewayTimeout, msg: "deadline expired while queued"}
		}
	}
	q.queued--
	q.inFlight++
	q.held[dataset]++
	q.mu.Unlock()
	q.admitted.Add(1)
	return func() {
		q.mu.Lock()
		q.inFlight--
		if q.held[dataset]--; q.held[dataset] <= 0 {
			delete(q.held, dataset)
		}
		q.dropDemandLocked(dataset)
		q.mu.Unlock()
		q.cond.Broadcast()
	}, nil
}

// QoSStats is the wire form of one admission class under /stats "qos".
type QoSStats struct {
	// Since is when the class's counters started (server start); Seq is
	// the /stats snapshot sequence (see StatsResponse.Seq) — together
	// they let a scraper order interleaved polls and detect restarts.
	Since       time.Time `json:"since"`
	Seq         uint64    `json:"seq"`
	MaxInFlight int       `json:"max_in_flight"`
	MaxQueued   int       `json:"max_queued"`
	InFlight    int       `json:"in_flight"`
	Queued      int       `json:"queued"`
	// Admitted counts requests that claimed a slot; Rejected overflows
	// of the class's queue; DeadlineExpired deadlines that fired while
	// queued.
	Admitted        uint64 `json:"admitted_total"`
	Rejected        uint64 `json:"rejected_total"`
	DeadlineExpired uint64 `json:"deadline_expired_total"`
	// FairnessDeferrals counts waits imposed solely by the per-dataset
	// fair-share clamp (capacity existed, the dataset was over its
	// split while others queued).
	FairnessDeferrals uint64  `json:"fairness_deferrals_total"`
	WaitMSTotal       float64 `json:"wait_ms_total"`
	MaxWaitMS         float64 `json:"max_wait_ms"`
	// Datasets breaks the class's current occupancy down per dataset.
	Datasets map[string]QoSDatasetStats `json:"datasets,omitempty"`
}

// QoSDatasetStats is one dataset's current occupancy of a class.
type QoSDatasetStats struct {
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
}

func (q *qosClass) stats() QoSStats {
	q.mu.Lock()
	st := QoSStats{
		Since:       q.since,
		MaxInFlight: q.max,
		MaxQueued:   q.maxQueued,
		InFlight:    q.inFlight,
		Queued:      q.queued,
	}
	if len(q.demand) > 0 {
		st.Datasets = make(map[string]QoSDatasetStats, len(q.demand))
		for d, dem := range q.demand {
			st.Datasets[d] = QoSDatasetStats{InFlight: q.held[d], Queued: dem - q.held[d]}
		}
	}
	q.mu.Unlock()
	st.Admitted = q.admitted.Load()
	st.Rejected = q.rejected.Load()
	st.DeadlineExpired = q.expired.Load()
	st.FairnessDeferrals = q.deferrals.Load()
	st.WaitMSTotal = float64(q.waitNanos.Load()) / float64(time.Millisecond)
	st.MaxWaitMS = float64(q.maxWait.Load()) / float64(time.Millisecond)
	return st
}
