package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/reltest"
	"repro/internal/workload"
	"repro/paq"
)

// testDatasetConfig is the common configuration: solver budgets
// generous enough that every non-hard workload query solves, bounded
// enough that a runaway query cannot stall CI.
func testDatasetConfig() DatasetConfig {
	return DatasetConfig{
		TauFrac: 0.10, Workers: 0, Seed: 7, Racers: 1,
		TimeLimit: 30 * time.Second, MaxNodes: 100000, Gap: 1e-4,
	}
}

// buildCorpus returns the two registered datasets plus a mixed query
// corpus: direct + sketchrefine, feasible + infeasible.
type qcase struct {
	dataset string
	method  string
	paql    string
}

func testRelations(t testing.TB) map[string]*relation.Relation {
	t.Helper()
	return map[string]*relation.Relation{
		"galaxy": workload.Galaxy(500, 3),
		"tpch":   workload.TPCH(500, 3),
	}
}

func buildCorpus(t testing.TB, rels map[string]*relation.Relation) []qcase {
	t.Helper()
	var cases []qcase
	add := func(ds, paql string) {
		for _, m := range []string{MethodDirect, MethodSketchRefine} {
			cases = append(cases, qcase{dataset: ds, method: m, paql: paql})
		}
	}
	gq, err := workload.GalaxyQueries(rels["galaxy"])
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range gq {
		if q.Hard {
			continue // combinatorially hard for branch-and-bound; not a load-test fit
		}
		add("galaxy", q.PaQL)
	}
	tq, err := workload.TPCHQueries(rels["tpch"])
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range tq {
		if q.Hard {
			continue
		}
		add("tpch", q.PaQL)
	}
	// Provably infeasible queries: every redshift/quantity is positive.
	add("galaxy", `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 3 AND SUM(P.redshift) <= -1
MINIMIZE SUM(P.r)`)
	add("tpch", `SELECT PACKAGE(R) AS P FROM tpch R REPEAT 0
SUCH THAT COUNT(P.*) = 4 AND SUM(P.quantity) <= -5
MAXIMIZE SUM(P.totalprice)`)
	return cases
}

// postQuery is used from worker goroutines, so it reports failures as
// errors instead of calling t.Fatal (FailNow must not run off the test
// goroutine).
func postQuery(client *http.Client, url string, req QueryRequest) (status int, raw []byte, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, raw, nil
}

// mustPostQuery is postQuery for the test goroutine itself.
func mustPostQuery(t *testing.T, client *http.Client, url string, req QueryRequest) (int, []byte) {
	t.Helper()
	status, raw, err := postQuery(client, url, req)
	if err != nil {
		t.Fatal(err)
	}
	return status, raw
}

// refResult is the in-process ground truth for one corpus case.
type refResult struct {
	infeasible bool
	objective  string
	// truncated marks a wall-clock-truncated reference incumbent, whose
	// objective is load-dependent and must not be byte-compared.
	truncated bool
}

// TestServerDifferentialLoad is the acceptance load test: ≥64 concurrent
// mixed PaQL queries over two datasets against a running paqld complete
// with zero panics, no 429s (the admission bound is sized for the load),
// and objectives byte-identical to in-process engine.Evaluate results.
func TestServerDifferentialLoad(t *testing.T) {
	rels := testRelations(t)
	cases := buildCorpus(t, rels)

	cfg := testDatasetConfig()
	srv := New(Config{MaxInFlight: 8, MaxQueued: 1000, DefaultTimeout: time.Minute})
	for name, rel := range rels {
		ds, err := NewDataset(name, rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.Register(ds)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Independent in-process reference: fresh datasets (identical config,
	// deterministic partitioning) with their own engines and caches.
	refs := make(map[qcase]refResult)
	refDS := make(map[string]*Dataset)
	for name, rel := range rels {
		ds, err := NewDataset(name, rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refDS[name] = ds
	}
	for _, c := range cases {
		if _, ok := refs[c]; ok {
			continue
		}
		m, err := paq.ParseMethod(c.method)
		if err != nil {
			t.Fatal(err)
		}
		stmt, err := refDS[c.dataset].Session().Prepare(c.paql, paq.WithMethod(m))
		if err != nil {
			t.Fatalf("%s/%s: reference prepare: %v", c.dataset, c.method, err)
		}
		res, execErr := stmt.Execute(context.Background())
		if execErr != nil {
			if errors.Is(execErr, paq.ErrInfeasible) {
				refs[c] = refResult{infeasible: true}
				continue
			}
			t.Fatalf("%s/%s: reference evaluation failed: %v", c.dataset, c.method, execErr)
		}
		refs[c] = refResult{
			objective: strconv.FormatFloat(res.Objective, 'g', -1, 64),
			truncated: res.Truncated,
		}
	}

	// Fire the corpus repeatedly until ≥64 concurrent requests are in
	// the air; later rounds exercise the server's solution cache.
	const minRequests = 64
	rounds := (minRequests + len(cases) - 1) / len(cases)
	total := rounds * len(cases)
	if total < minRequests {
		t.Fatalf("corpus too small: %d requests < %d", total, minRequests)
	}
	t.Logf("firing %d concurrent requests (%d cases × %d rounds)", total, len(cases), rounds)

	client := ts.Client()
	client.Timeout = 2 * time.Minute
	var wg sync.WaitGroup
	errCh := make(chan error, total)
	for round := 0; round < rounds; round++ {
		for _, c := range cases {
			wg.Add(1)
			go func(c qcase) {
				defer wg.Done()
				status, raw, err := postQuery(client, ts.URL, QueryRequest{
					Dataset: c.dataset, Query: c.paql, Method: c.method,
				})
				if err != nil {
					errCh <- fmt.Errorf("%s/%s: %v", c.dataset, c.method, err)
					return
				}
				if status != http.StatusOK {
					errCh <- fmt.Errorf("%s/%s: status %d: %s", c.dataset, c.method, status, raw)
					return
				}
				var qr QueryResponse
				if err := json.Unmarshal(raw, &qr); err != nil {
					errCh <- fmt.Errorf("%s/%s: bad response: %v", c.dataset, c.method, err)
					return
				}
				want := refs[c]
				if qr.Infeasible != want.infeasible {
					errCh <- fmt.Errorf("%s/%s: infeasible = %v, reference %v", c.dataset, c.method, qr.Infeasible, want.infeasible)
					return
				}
				if qr.Truncated || want.truncated {
					// Wall-clock-truncated incumbents (possible on a
					// heavily oversubscribed CI box) are load-dependent;
					// byte-comparing them would be flaky, not rigorous.
					return
				}
				if qr.Objective != want.objective {
					errCh <- fmt.Errorf("%s/%s: objective %q differs from in-process %q",
						c.dataset, c.method, qr.Objective, want.objective)
				}
			}(c)
		}
	}
	wg.Wait()
	close(errCh)
	failures := 0
	for err := range errCh {
		failures++
		if failures <= 10 {
			t.Error(err)
		}
	}
	if failures > 10 {
		t.Errorf("... and %d more failures", failures-10)
	}

	st := srv.Stats()
	if st.Queries != uint64(total) {
		t.Errorf("stats.Queries = %d, want %d", st.Queries, total)
	}
	if st.Rejected != 0 {
		t.Errorf("stats.Rejected = %d, want 0 (admission bound sized for the load)", st.Rejected)
	}
	var hits uint64
	for _, ds := range st.Datasets {
		for _, cs := range ds.Caches {
			hits += cs.Hits
		}
	}
	if rounds > 1 && hits == 0 {
		t.Error("no cache hits across repeated rounds; solution cache not shared")
	}
}

// blockingSolver blocks every Solve until released (or the context
// fires), for deterministic admission-control and drain tests.
type blockingSolver struct {
	release chan struct{}
	started chan struct{} // one token per Solve entry
}

func (b *blockingSolver) Name() string { return "blocking" }

func (b *blockingSolver) Solve(ctx context.Context, spec *core.Spec) (*core.Package, *core.EvalStats, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	select {
	case <-b.release:
		return nil, &core.EvalStats{}, core.ErrInfeasible
	case <-ctx.Done():
		return nil, &core.EvalStats{}, ctx.Err()
	}
}

// tinyDataset registers a 4-row dataset whose direct engine uses the
// given solver.
func tinyDataset(t *testing.T, srv *Server, solver paq.Solver) string {
	t.Helper()
	rel := relation.New("tiny", reltest.Schema(
		relation.Column{Name: "x", Type: relation.Float},
	))
	for i := 0; i < 4; i++ {
		reltest.Append(rel, relation.F(float64(i+1)))
	}
	ds, err := NewDataset("tiny", rel, testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	// SetSolver's engines never cache, so every request reaches the
	// solver (blocking tests depend on it).
	ds.Session().SetSolver(paq.MethodDirect, solver)
	srv.Register(ds)
	return `SELECT PACKAGE(T) AS P FROM tiny T REPEAT 0
SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.x)`
}

// TestAdmissionControl verifies the bounded in-flight queue: with 1
// solve slot and 1 queue slot, a third concurrent query is refused with
// 429, and the refusal happens immediately (no waiting for the solver).
func TestAdmissionControl(t *testing.T) {
	srv := New(Config{MaxInFlight: 1, MaxQueued: 1, DefaultTimeout: 30 * time.Second})
	solver := &blockingSolver{release: make(chan struct{}), started: make(chan struct{}, 64)}
	paql := tinyDataset(t, srv, solver)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	statuses := make(chan int, n)
	var wg sync.WaitGroup
	// First occupy the solve slot, so admission counts are deterministic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _, err := postQuery(ts.Client(), ts.URL, QueryRequest{Dataset: "tiny", Query: paql})
		if err != nil {
			status = -1
		}
		statuses <- status
	}()
	select {
	case <-solver.started:
	case <-time.After(10 * time.Second):
		t.Fatal("first query never reached the solver")
	}
	// One more fits in the queue; the rest must be 429.
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, err := postQuery(ts.Client(), ts.URL, QueryRequest{Dataset: "tiny", Query: paql})
			if err != nil {
				status = -1
			}
			statuses <- status
		}()
	}
	// All but the queued request get refused without the solver moving.
	deadline := time.After(10 * time.Second)
	rejected := 0
	for rejected < n-2 {
		select {
		case st := <-statuses:
			if st != http.StatusTooManyRequests {
				t.Fatalf("early response status %d, want 429", st)
			}
			rejected++
		case <-deadline:
			t.Fatalf("only %d refusals arrived, want %d", rejected, n-2)
		}
	}
	close(solver.release)
	wg.Wait()
	close(statuses)
	counts := map[int]int{http.StatusTooManyRequests: rejected}
	for st := range statuses {
		counts[st]++
	}
	// 2 admitted (in-flight + queued) complete; the other n-2 are 429.
	if counts[http.StatusTooManyRequests] != n-2 {
		t.Errorf("429s = %d, want %d (counts: %v)", counts[http.StatusTooManyRequests], n-2, counts)
	}
	if got := srv.Stats().Rejected; got != uint64(n-2) {
		t.Errorf("stats.Rejected = %d, want %d", got, n-2)
	}
}

// TestDeadlineMapsToCancellation verifies that timeout_ms reaches the
// solver as context cancellation and surfaces as 504.
func TestDeadlineMapsToCancellation(t *testing.T) {
	srv := New(Config{MaxInFlight: 2, MaxQueued: 2})
	solver := &blockingSolver{release: make(chan struct{}), started: make(chan struct{}, 4)}
	paql := tinyDataset(t, srv, solver)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, raw := mustPostQuery(t, ts.Client(), ts.URL, QueryRequest{
		Dataset: "tiny", Query: paql, TimeoutMS: 50,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, raw)
	}
	close(solver.release)
}

// TestGracefulShutdown verifies draining: during Shutdown new queries are
// refused with 503 and the call returns only after in-flight solves end.
func TestGracefulShutdown(t *testing.T) {
	srv := New(Config{MaxInFlight: 1, MaxQueued: 1, DefaultTimeout: 30 * time.Second})
	solver := &blockingSolver{release: make(chan struct{}), started: make(chan struct{}, 4)}
	paql := tinyDataset(t, srv, solver)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inFlight := make(chan int, 1)
	go func() {
		status, _, err := postQuery(ts.Client(), ts.URL, QueryRequest{Dataset: "tiny", Query: paql})
		if err != nil {
			status = -1
		}
		inFlight <- status
	}()
	select {
	case <-solver.started:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the solver")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Draining: a new query must be refused with 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _ := mustPostQuery(t, ts.Client(), ts.URL, QueryRequest{Dataset: "tiny", Query: paql})
		if status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server still admits queries (status %d)", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a solve was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(solver.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := <-inFlight; st != http.StatusOK {
		t.Fatalf("in-flight query finished with %d, want 200", st)
	}
}

// TestBadInputs verifies that adversarial input surfaces as structured
// errors, never a panic or a hung connection.
func TestBadInputs(t *testing.T) {
	rels := testRelations(t)
	srv := New(Config{})
	ds, err := NewDataset("galaxy", rels["galaxy"], testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	tests := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{`, http.StatusBadRequest},
		{"unknown field", `{"dataset":"galaxy","query":"x","nope":1}`, http.StatusBadRequest},
		{"empty query", `{"dataset":"galaxy","query":""}`, http.StatusBadRequest},
		{"unknown dataset", `{"dataset":"nope","query":"SELECT PACKAGE(G) AS P FROM galaxy G"}`, http.StatusNotFound},
		{"unknown method", `{"dataset":"galaxy","method":"naive","query":"SELECT PACKAGE(G) AS P FROM galaxy G"}`, http.StatusBadRequest},
		{"parse error", `{"dataset":"galaxy","query":"SELECT GARBAGE"}`, http.StatusBadRequest},
		{"unknown column", `{"dataset":"galaxy","query":"SELECT PACKAGE(G) AS P FROM galaxy G SUCH THAT SUM(P.nope) <= 1"}`, http.StatusBadRequest},
		{"wrong relation", `{"dataset":"galaxy","query":"SELECT PACKAGE(X) AS P FROM other X SUCH THAT COUNT(P.*) = 1"}`, http.StatusBadRequest},
		{"or in such that", `{"dataset":"galaxy","query":"SELECT PACKAGE(G) AS P FROM galaxy G SUCH THAT COUNT(P.*) = 1 OR COUNT(P.*) = 2"}`, http.StatusBadRequest},
	}
	for _, tc := range tests {
		if resp := post(tc.body); resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// GET endpoints stay healthy afterwards.
	for _, path := range []string{"/stats", "/datasets", "/healthz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	if got := srv.Stats().BadRequests; got == 0 {
		t.Error("bad requests not counted")
	}
}

// TestIncludeTuples exercises the tuple materialization path.
func TestIncludeTuples(t *testing.T) {
	rels := testRelations(t)
	srv := New(Config{})
	ds, err := NewDataset("galaxy", rels["galaxy"], testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, raw := mustPostQuery(t, ts.Client(), ts.URL, QueryRequest{
		Dataset: "galaxy",
		Query: `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 2 MINIMIZE SUM(P.r)`,
		IncludeTuples: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Size != 2 || len(qr.Tuples) != 2 {
		t.Fatalf("size %d, tuples %d, want 2/2", qr.Size, len(qr.Tuples))
	}
	if len(qr.Tuples[0]) != rels["galaxy"].Schema().Len() {
		t.Fatalf("tuple width %d, want %d", len(qr.Tuples[0]), rels["galaxy"].Schema().Len())
	}
}

// TestExplainRequest: "explain": true returns the statement's typed
// plan — method, reason, ILP size, partitioning shape — without
// consuming a solve.
func TestExplainRequest(t *testing.T) {
	rels := testRelations(t)
	srv := New(Config{})
	ds, err := NewDataset("galaxy", rels["galaxy"], testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, raw := mustPostQuery(t, ts.Client(), ts.URL, QueryRequest{
		Dataset: "galaxy",
		Method:  MethodSketchRefine,
		Explain: true,
		Query: `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 2 MINIMIZE SUM(P.r)`,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Plan == nil {
		t.Fatal("explain response has no plan")
	}
	if qr.Plan.Method != paq.MethodSketchRefine {
		t.Errorf("plan method %q, want sketchrefine", qr.Plan.Method)
	}
	if qr.Plan.Variables == 0 || qr.Plan.Constraints == 0 {
		t.Errorf("plan has empty ILP size: %+v", qr.Plan)
	}
	if qr.Plan.Partitioning == nil || qr.Plan.Partitioning.Groups == 0 {
		t.Errorf("sketchrefine plan lacks partitioning info: %+v", qr.Plan)
	}
	if qr.Rows != nil || qr.Objective != "" {
		t.Error("explain response carries solve results")
	}
	st := srv.Stats()
	if st.Explains != 1 {
		t.Errorf("stats.Explains = %d, want 1", st.Explains)
	}
	if st.OK != 0 {
		t.Errorf("explain counted as a solved query (ok=%d)", st.OK)
	}
}

// TestIncumbentCountSurfaced: executions count their improving ILP
// incumbents, per response and in aggregate at /stats.
func TestIncumbentCountSurfaced(t *testing.T) {
	rels := testRelations(t)
	srv := New(Config{})
	ds, err := NewDataset("galaxy", rels["galaxy"], testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, raw := mustPostQuery(t, ts.Client(), ts.URL, QueryRequest{
		Dataset: "galaxy",
		Query: `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 3 AND SUM(P.redshift) <= 2.0
MAXIMIZE SUM(P.petrorad)`,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Incumbents == 0 {
		t.Error("response reports zero incumbents for a fresh solve")
	}
	st := srv.Stats()
	if st.Incumbents == 0 {
		t.Error("/stats incumbents_total is zero after a solve")
	}
	if st.Incumbents != uint64(qr.Incumbents) {
		t.Errorf("/stats incumbents_total = %d, response reported %d", st.Incumbents, qr.Incumbents)
	}
}

// TestAdvisorStatsExposed: warm partitionings and the adaptive
// planner's counters are observable at /stats, and AdviseOnce's
// adoption of a hot attribute set shows up there as a prewarmed set.
func TestAdvisorStatsExposed(t *testing.T) {
	srv := New(Config{})
	ds, err := NewDataset("galaxy", workload.Galaxy(500, 3), testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(ds)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.r)`
	for i := 0; i < 3; i++ {
		status, raw := mustPostQuery(t, ts.Client(), ts.URL, QueryRequest{Dataset: "galaxy", Query: q, Method: "auto"})
		if status != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, status, raw)
		}
	}
	// Three uses make the dataset's (fixed) attribute set hot; the
	// advisor pass adopts the warm partitioning as advisor-managed.
	if acts := srv.AdviseOnce(); len(acts) == 0 {
		t.Fatal("AdviseOnce took no action on a hot attribute set")
	}

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	dst, ok := st.Datasets["galaxy"]
	if !ok {
		t.Fatalf("no galaxy dataset in /stats: %s", raw)
	}
	if len(dst.WarmSets) == 0 {
		t.Fatal("/stats reports no warm_sets")
	}
	var prewarmed, pinned bool
	for _, ws := range dst.WarmSets {
		prewarmed = prewarmed || ws.Prewarmed
		pinned = pinned || ws.Pinned
		if ws.Uses < 3 {
			t.Errorf("warm set %v uses = %d, want the three queries counted", ws.Attrs, ws.Uses)
		}
	}
	if !prewarmed || !pinned {
		t.Errorf("warm sets %+v: want the session set both pinned and advisor-adopted", dst.WarmSets)
	}
	if dst.Advisor == nil {
		t.Fatal("/stats has no advisor block")
	}
	if dst.Advisor.Decisions < 3 || dst.Advisor.HotSets < 1 {
		t.Errorf("advisor block %+v does not reflect the workload", dst.Advisor)
	}
	for _, field := range []string{`"warm_sets"`, `"last_used_version"`, `"advisor"`, `"hot_sets"`} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Errorf("/stats JSON is missing %s", field)
		}
	}
}
