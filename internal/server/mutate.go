package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/relation"
	"repro/paq"
)

// MutateRequest is the body of POST /datasets/{name}/rows: any
// combination of inserts, deletes, and in-place updates, applied in
// that order as one batch. Cell values are JSON scalars coerced by the
// dataset's column types (numbers into BIGINT/DOUBLE columns — integral
// values only for BIGINT — and strings into TEXT columns).
type MutateRequest struct {
	// Insert appends rows; each row lists one value per column, in
	// schema order (see GET /datasets for the schema).
	Insert [][]any `json:"insert,omitempty"`
	// Delete tombstones rows by index (as returned in query responses
	// and insert acknowledgements). Row indices are stable: deletes
	// never renumber surviving rows.
	Delete []int `json:"delete,omitempty"`
	// Update overwrites live rows in place.
	Update []UpdateRow `json:"update,omitempty"`
}

// UpdateRow is one in-place row replacement.
type UpdateRow struct {
	Row    int   `json:"row"`
	Values []any `json:"values"`
}

// MaintJSON is the wire form of paq.MaintStats.
type MaintJSON struct {
	Inserts  uint64 `json:"inserts"`
	Deletes  uint64 `json:"deletes"`
	Updates  uint64 `json:"updates"`
	Splits   uint64 `json:"splits"`
	Merges   uint64 `json:"merges"`
	Heals    uint64 `json:"heals"`
	Rebuilds uint64 `json:"rebuilds"`
}

func maintJSON(ms paq.MaintStats) MaintJSON {
	return MaintJSON{
		Inserts: ms.Inserts, Deletes: ms.Deletes, Updates: ms.Updates,
		Splits: ms.Splits, Merges: ms.Merges, Heals: ms.Heals, Rebuilds: ms.Rebuilds,
	}
}

// MutateResponse is the body of a successful POST /datasets/{name}/rows.
type MutateResponse struct {
	Dataset string `json:"dataset"`
	// Version is the dataset version after the batch (monotonically
	// increasing with every mutation).
	Version uint64 `json:"version"`
	// InsertedRows are the row indices assigned to the inserted rows, in
	// request order; use them for later deletes and updates.
	InsertedRows []int `json:"inserted_rows,omitempty"`
	Inserted     int   `json:"inserted"`
	Deleted      int   `json:"deleted"`
	Updated      int   `json:"updated"`
	// Maintenance snapshots the dataset's cumulative incremental
	// partition-maintenance counters after the batch.
	Maintenance MaintJSON `json:"maintenance"`
	TimeMS      float64   `json:"time_ms"`
}

// coerceRow lowers JSON scalars onto the relation's column types.
func coerceRow(rel *relation.Relation, raw []any) ([]relation.Value, error) {
	schema := rel.Schema()
	if len(raw) != schema.Len() {
		return nil, fmt.Errorf("row has %d values, schema has %d columns", len(raw), schema.Len())
	}
	vals := make([]relation.Value, len(raw))
	for i, v := range raw {
		col := schema.Col(i)
		switch x := v.(type) {
		case string:
			if col.Type != relation.String {
				return nil, fmt.Errorf("column %q (%s) cannot hold string %q", col.Name, col.Type, x)
			}
			vals[i] = relation.S(x)
		case json.Number:
			switch col.Type {
			case relation.Int:
				n, err := x.Int64()
				if err != nil {
					return nil, fmt.Errorf("column %q (BIGINT) cannot hold %v", col.Name, x)
				}
				vals[i] = relation.I(n)
			case relation.Float:
				f, err := x.Float64()
				if err != nil {
					return nil, fmt.Errorf("column %q (DOUBLE) cannot hold %v", col.Name, x)
				}
				vals[i] = relation.F(f)
			default:
				return nil, fmt.Errorf("column %q (%s) cannot hold number %v", col.Name, col.Type, x)
			}
		default:
			return nil, fmt.Errorf("column %q: unsupported JSON value %v (want string or number)", col.Name, v)
		}
	}
	return vals, nil
}

// handleMutate serves POST /datasets/{name}/rows: one admission-
// controlled batch of inserts, deletes, and updates against a
// registered dataset. The paq session applies each sub-batch
// atomically (all-or-nothing); sub-batches are applied in insert →
// delete → update order, and a failing sub-batch aborts the ones after
// it (the response is then an error even though earlier sub-batches
// committed — the reported version tells the client where it stands).
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		s.failf(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	defer s.leave()
	s.ctr.mutations.Add(1)

	// The replication gate runs before any work: a follower (or a fenced
	// ex-leader) refuses writes outright so a client retries against the
	// current leader instead of splitting the brain.
	if err := s.checkMutationGate(); err != nil {
		s.ctr.rejected.Add(1)
		s.failf(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	ds := s.Dataset(r.PathValue("name"))
	if ds == nil {
		s.ctr.badRequest.Add(1)
		s.failf(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("name"))
		return
	}
	var req MutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.UseNumber() // keep int64 cells exact; coerceRow resolves by column type
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.ctr.badRequest.Add(1)
		s.failf(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Insert) == 0 && len(req.Delete) == 0 && len(req.Update) == 0 {
		s.ctr.badRequest.Add(1)
		s.failf(w, http.StatusBadRequest, "empty mutation (provide insert, delete, and/or update)")
		return
	}

	// Coerce everything before admission: a malformed batch should not
	// consume a slot.
	rel := ds.Rel()
	inserts := make([][]relation.Value, 0, len(req.Insert))
	for i, raw := range req.Insert {
		vals, err := coerceRow(rel, raw)
		if err != nil {
			s.ctr.badRequest.Add(1)
			s.failf(w, http.StatusBadRequest, "insert row %d: %v", i, err)
			return
		}
		inserts = append(inserts, vals)
	}
	updRows := make([]int, 0, len(req.Update))
	updVals := make([][]relation.Value, 0, len(req.Update))
	for i, u := range req.Update {
		vals, err := coerceRow(rel, u.Values)
		if err != nil {
			s.ctr.badRequest.Add(1)
			s.failf(w, http.StatusBadRequest, "update of row %d (entry %d): %v", u.Row, i, err)
			return
		}
		updRows = append(updRows, u.Row)
		updVals = append(updVals, vals)
	}

	// Mutations are admitted through the ingest QoS class — their own
	// token bucket, so an ingestion burst sheds load at the edge without
	// consuming solve slots (solves run against pinned snapshots and
	// never wait on ingest either way).
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	release := s.admit(ctx, w, s.ingest, ds.Name())
	if release == nil {
		return
	}
	defer release()

	t0 := time.Now()
	sess := ds.Session()
	resp := MutateResponse{Dataset: ds.Name()}
	// A mutation error is normally the client's fault (bad index, type
	// mismatch): 400, nothing applied. ErrIndeterminate is the opposite:
	// a storage fault after the batch was applied in memory — the rows
	// are live and queryable at the reported version, only their
	// durability is unknown — so it maps to 500 and the counters still
	// record the applied rows. The message carries the version (and for
	// inserts the assigned ids) a client needs to reconcile instead of
	// blindly retrying.
	fail := func(op string, err error) {
		s.ctr.failures.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, paq.ErrIndeterminate) {
			status = http.StatusInternalServerError
		}
		s.failf(w, status, "%s: %v (dataset at version %d)", op, err, sess.Version())
	}
	if len(inserts) > 0 {
		ids, _, err := sess.InsertRows(inserts)
		if err != nil {
			if errors.Is(err, paq.ErrIndeterminate) {
				s.ctr.rowsInserted.Add(uint64(len(ids)))
				s.ctr.failures.Add(1)
				s.failf(w, http.StatusInternalServerError,
					"insert: %v (rows %v applied in memory, dataset at version %d)", err, ids, sess.Version())
				return
			}
			fail("insert", err)
			return
		}
		resp.InsertedRows = ids
		resp.Inserted = len(ids)
		s.ctr.rowsInserted.Add(uint64(len(ids)))
	}
	if len(req.Delete) > 0 {
		if _, err := sess.DeleteRows(req.Delete); err != nil {
			if errors.Is(err, paq.ErrIndeterminate) {
				s.ctr.rowsDeleted.Add(uint64(len(req.Delete)))
			}
			fail("delete", err)
			return
		}
		resp.Deleted = len(req.Delete)
		s.ctr.rowsDeleted.Add(uint64(len(req.Delete)))
	}
	if len(updRows) > 0 {
		if _, err := sess.UpdateRows(updRows, updVals); err != nil {
			if errors.Is(err, paq.ErrIndeterminate) {
				s.ctr.rowsUpdated.Add(uint64(len(updRows)))
			}
			fail("update", err)
			return
		}
		resp.Updated = len(updRows)
		s.ctr.rowsUpdated.Add(uint64(len(updRows)))
	}
	resp.Version = sess.Version()
	resp.Maintenance = maintJSON(sess.MaintStats())
	resp.TimeMS = float64(time.Since(t0)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}
