// Package repro's root benchmark suite regenerates every table and
// figure of the paper's evaluation as Go benchmarks (testing.B), one per
// experiment. Each benchmark wraps the corresponding internal/bench
// harness at a laptop-scale configuration; cmd/benchrunner runs the same
// experiments at larger scales with printed tables.
//
//	go test -bench=. -benchmem
//
// Benchmark names map to the paper: BenchmarkFigure1_* (SQL vs ILP
// formulation), BenchmarkFigure3_* (TPC-H table sizes),
// BenchmarkFigure4_* (partitioning time), BenchmarkFigure5/6_* (Galaxy
// and TPC-H scalability), BenchmarkFigure7/8_* (τ sweeps),
// BenchmarkFigure9_* (partitioning coverage), and
// BenchmarkSection521_EpsilonRepair (the TPC-H Q2 radius-limit note).
package repro

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/naive"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/sketchrefine"
	"repro/internal/translate"
	"repro/internal/workload"
)

// benchEnv caches one harness environment across benchmarks.
var (
	envOnce sync.Once
	env     *bench.Env
)

// benchSolver maps the harness config to the internal solver budgets
// (the benchmarks below exercise the internal strategy APIs directly).
func benchSolver(e *bench.Env) ilp.Options {
	cfg := e.Config()
	return ilp.Options{TimeLimit: cfg.TimeLimit, MaxNodes: cfg.MaxNodes, Gap: cfg.Gap}
}

func getEnv() *bench.Env {
	envOnce.Do(func() {
		var err error
		env, err = bench.NewEnv(bench.Config{
			GalaxyN:   6000,
			TPCHN:     12000,
			Seed:      1,
			MaxNodes:  50000,
			Gap:       1e-4,
			TimeLimit: 30 * time.Second,
		})
		if err != nil {
			panic(err)
		}
	})
	return env
}

// mustQueries unwraps a workload query-list constructor result inside
// tests and benchmarks (construction only fails on a malformed dataset,
// which would be a bug in the generators).
func mustQueries(qs []workload.Query, err error) []workload.Query {
	if err != nil {
		panic(err)
	}
	return qs
}

// fig1Spec builds the Figure 1 query at one cardinality over n tuples.
func fig1Spec(b *testing.B, card int) *core.Spec {
	b.Helper()
	rel := workload.Galaxy(100, 1)
	spec, err := translate.Compile(`
SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = `+itoa(card)+` AND SUM(P.r) >= `+itoa(card*13)+`
MINIMIZE SUM(P.redshift)`, rel)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BenchmarkFigure1_SQLFormulation measures the naive multi-way self-join
// baseline at increasing package cardinalities (the exploding curve of
// Figure 1).
func BenchmarkFigure1_SQLFormulation(b *testing.B) {
	for _, card := range []int{1, 2, 3, 4} {
		spec := fig1Spec(b, card)
		b.Run("card="+itoa(card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := naive.Evaluate(spec, naive.Options{Timeout: 20 * time.Second}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure1_ILPFormulation measures DIRECT on the same queries
// (the flat curve of Figure 1).
func BenchmarkFigure1_ILPFormulation(b *testing.B) {
	for _, card := range []int{1, 2, 3, 4, 5, 6, 7} {
		spec := fig1Spec(b, card)
		b.Run("card="+itoa(card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Direct(spec, ilp.Options{Gap: 1e-4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3_TPCHSubsets measures per-query base-table
// materialization (Figure 3's table construction).
func BenchmarkFigure3_TPCHSubsets(b *testing.B) {
	rel := workload.TPCH(12000, 1)
	queries := mustQueries(workload.TPCHQueries(rel))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			t := workload.QueryTable(rel, q)
			if t.Len() == 0 {
				b.Fatal("empty query table")
			}
		}
	}
}

// BenchmarkFigure4_PartitioningGalaxy measures offline quad-tree
// partitioning of the Galaxy dataset (Figure 4, first row).
func BenchmarkFigure4_PartitioningGalaxy(b *testing.B) {
	rel := workload.Galaxy(12000, 1)
	attrs := workload.WorkloadAttrs(mustQueries(workload.GalaxyQueries(rel)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Build(rel, partition.Options{Attrs: attrs, SizeThreshold: 1200}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4_PartitioningTPCH measures offline partitioning of the
// TPC-H dataset (Figure 4, second row).
func BenchmarkFigure4_PartitioningTPCH(b *testing.B) {
	rel := workload.TPCH(12000, 1)
	attrs := workload.WorkloadAttrs(mustQueries(workload.TPCHQueries(rel)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Build(rel, partition.Options{Attrs: attrs, SizeThreshold: 1200}); err != nil {
			b.Fatal(err)
		}
	}
}

// scalabilityBench runs the DIRECT and SKETCHREFINE sides of one
// workload query at full scale (Figures 5 and 6's 100% points).
func scalabilityBench(b *testing.B, ds bench.Dataset) {
	e := getEnv()
	solver := benchSolver(e)
	for _, q := range e.Queries(ds) {
		rel := workload.QueryTable(datasetRel(ds), q)
		spec, err := translate.Compile(q.PaQL, rel)
		if err != nil {
			b.Fatal(err)
		}
		part, err := partition.Build(rel, partition.Options{
			Attrs:         workload.WorkloadAttrs(e.Queries(ds)),
			SizeThreshold: rel.Len()/10 + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q.Name+"/direct", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := core.Direct(spec, solver)
				if err != nil && q.Hard {
					b.Skipf("DIRECT failure on hard query (paper-consistent): %v", err)
				} else if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/sketchrefine", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := sketchrefine.Evaluate(spec, part, sketchrefine.Options{Solver: solver, HybridSketch: true})
				if err != nil && q.Hard {
					b.Skipf("hard query at bench scale: %v", err)
				} else if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var (
	relOnce sync.Once
	dsRels  map[bench.Dataset]*relation.Relation
)

// datasetRel returns the cached full dataset at the benchmark scale.
func datasetRel(ds bench.Dataset) *relation.Relation {
	relOnce.Do(func() {
		dsRels = map[bench.Dataset]*relation.Relation{
			bench.Galaxy: workload.Galaxy(6000, 1),
			bench.TPCH:   workload.TPCH(12000, 1),
		}
	})
	return dsRels[ds]
}

// BenchmarkFigure5_Galaxy reproduces Figure 5's per-query comparison.
func BenchmarkFigure5_Galaxy(b *testing.B) { scalabilityBench(b, bench.Galaxy) }

// BenchmarkFigure6_TPCH reproduces Figure 6's per-query comparison.
func BenchmarkFigure6_TPCH(b *testing.B) { scalabilityBench(b, bench.TPCH) }

// BenchmarkFigure7_TauSweepGalaxy measures SketchRefine across partition
// size thresholds on Galaxy (Figure 7's sweep, at a single query).
func BenchmarkFigure7_TauSweepGalaxy(b *testing.B) { tauSweepBench(b, bench.Galaxy) }

// BenchmarkFigure8_TauSweepTPCH is the TPC-H τ sweep (Figure 8).
func BenchmarkFigure8_TauSweepTPCH(b *testing.B) { tauSweepBench(b, bench.TPCH) }

func tauSweepBench(b *testing.B, ds bench.Dataset) {
	e := getEnv()
	q := e.Queries(ds)[2] // Q3: a representative non-hard query
	rel := workload.QueryTable(datasetRel(ds), q)
	spec, err := translate.Compile(q.PaQL, rel)
	if err != nil {
		b.Fatal(err)
	}
	attrs := workload.WorkloadAttrs(e.Queries(ds))
	for tau := rel.Len() / 2; tau >= 64; tau /= 8 {
		part, err := partition.Build(rel, partition.Options{Attrs: attrs, SizeThreshold: tau})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("tau="+itoa(tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sketchrefine.Evaluate(spec, part, sketchrefine.Options{
					Solver: benchSolver(e), HybridSketch: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure9_Coverage measures SketchRefine under partitionings
// covering subsets, exactly, and supersets of the query attributes
// (Figure 9).
func BenchmarkFigure9_Coverage(b *testing.B) {
	e := getEnv()
	q := e.Queries(bench.Galaxy)[2] // Q3 touches three attributes
	rel := workload.QueryTable(datasetRel(bench.Galaxy), q)
	spec, err := translate.Compile(q.PaQL, rel)
	if err != nil {
		b.Fatal(err)
	}
	all := workload.WorkloadAttrs(e.Queries(bench.Galaxy))
	variants := map[string][]string{
		"subset":   q.Attrs[:1],
		"exact":    q.Attrs,
		"superset": all,
	}
	for _, name := range []string{"subset", "exact", "superset"} {
		attrs := variants[name]
		part, err := partition.Build(rel, partition.Options{Attrs: attrs, SizeThreshold: rel.Len()/10 + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sketchrefine.Evaluate(spec, part, sketchrefine.Options{
					Solver: benchSolver(e), HybridSketch: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSection521_EpsilonRepair measures the radius-limited
// partitioning + evaluation pipeline of the Section 5.2.1 note (TPC-H Q2
// with ε = 1.0).
func BenchmarkSection521_EpsilonRepair(b *testing.B) {
	e := getEnv()
	q := e.Queries(bench.TPCH)[1]
	rel := workload.QueryTable(datasetRel(bench.TPCH), q)
	spec, err := translate.Compile(q.PaQL, rel)
	if err != nil {
		b.Fatal(err)
	}
	omega, err := partition.RadiusForEpsilon(rel, q.Attrs, 1.0, q.Maximize)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part, err := partition.Build(rel, partition.Options{
			Attrs: q.Attrs, SizeThreshold: rel.Len()/10 + 1, RadiusLimit: omega,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sketchrefine.Evaluate(spec, part, sketchrefine.Options{
			Solver: benchSolver(e), HybridSketch: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
