// Night sky: the paper's Example 2. An astrophysicist looks for sets of
// sky-grid cells that may contain unseen quasars: the overall redshift of
// the selected cells must fall in a window, and sets are ranked by their
// total quasar-likelihood score.
//
// The sky is divided into grid cells (one tuple per cell, aggregating the
// synthetic Galaxy catalog), and the package query picks the best set of
// eight cells. The example evaluates the query both with DIRECT and with
// SKETCHREFINE over a quad-tree partitioning and compares the results —
// the scalable path is what makes this workable on full-survey scales.
//
// Run with: go run ./examples/nightsky
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/ilp"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/sketchrefine"
	"repro/internal/translate"
	"repro/internal/workload"
)

const query = `
SELECT PACKAGE(C) AS P
FROM cells C REPEAT 0
SUCH THAT COUNT(P.*) = 8 AND
          SUM(P.redshift) BETWEEN 6.0 AND 9.0 AND
          MAX(P.brightness) <= 20.5
MAXIMIZE SUM(P.likelihood)`

func main() {
	cells := buildCellGrid(40000, 40) // 40×40 grid over a 40k-galaxy catalog
	fmt.Printf("sky grid: %d non-empty cells\n", cells.Len())

	spec, err := translate.Compile(query, cells)
	if err != nil {
		log.Fatal(err)
	}
	opt := ilp.Options{TimeLimit: 30 * time.Second, MaxNodes: 100000, Gap: 1e-4}

	ctx := context.Background()
	dRes := engine.New(engine.Direct{Opt: opt}).Evaluate(ctx, spec)
	if dRes.Err != nil {
		log.Fatal("DIRECT: ", dRes.Err)
	}
	direct, dTime := dRes.Pkg, dRes.Time

	part, err := partition.Build(cells, partition.Options{
		Attrs:         []string{"redshift", "likelihood", "brightness"},
		SizeThreshold: cells.Len()/10 + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sRes := engine.New(engine.SketchRefine{
		Part: part,
		Opt:  sketchrefine.Options{Solver: opt, HybridSketch: true},
	}).Evaluate(ctx, spec)
	if sRes.Err != nil {
		log.Fatal("SKETCHREFINE: ", sRes.Err)
	}
	sketch, sTime := sRes.Pkg, sRes.Time

	objD, _ := direct.ObjectiveValue(spec)
	objS, _ := sketch.ObjectiveValue(spec)
	fmt.Printf("DIRECT:       likelihood %.2f in %v\n", objD, dTime.Round(time.Millisecond))
	fmt.Printf("SKETCHREFINE: likelihood %.2f in %v (ratio %.3f)\n",
		objS, sTime.Round(time.Millisecond), objD/objS)
	fmt.Println("selected cells (SketchRefine):")
	for k, row := range sketch.Rows {
		fmt.Printf("  cell(ra=%3.0f°, dec=%+3.0f°) galaxies=%4.0f redshift=%.2f likelihood=%.2f\n",
			cells.Float(row, 0), cells.Float(row, 1), cells.Float(row, 2),
			cells.Float(row, 4), cells.Float(row, 5))
		_ = k
	}
}

// buildCellGrid aggregates a synthetic galaxy catalog into sky-grid cells
// with per-cell counts, mean brightness, mean redshift, and a
// quasar-likelihood score (bright cells with high mean redshift score
// higher).
func buildCellGrid(galaxies, gridSize int) *relation.Relation {
	cat := workload.Galaxy(galaxies, 11)
	raIdx := cat.Schema().Lookup("ra")
	decIdx := cat.Schema().Lookup("dec")
	rIdx := cat.Schema().Lookup("r")
	zIdx := cat.Schema().Lookup("redshift")

	type cell struct {
		n           int
		r, redshift float64
	}
	grid := make(map[[2]int]*cell)
	for row := 0; row < cat.Len(); row++ {
		i := int(cat.Float(row, raIdx) / 360 * float64(gridSize))
		j := int((cat.Float(row, decIdx) + 90) / 180 * float64(gridSize))
		key := [2]int{i, j}
		c := grid[key]
		if c == nil {
			c = &cell{}
			grid[key] = c
		}
		c.n++
		c.r += cat.Float(row, rIdx)
		c.redshift += cat.Float(row, zIdx)
	}

	cells := relation.New("cells", relation.NewSchema(
		relation.Column{Name: "ra", Type: relation.Float},
		relation.Column{Name: "dec", Type: relation.Float},
		relation.Column{Name: "galaxies", Type: relation.Float},
		relation.Column{Name: "brightness", Type: relation.Float},
		relation.Column{Name: "redshift", Type: relation.Float},
		relation.Column{Name: "likelihood", Type: relation.Float},
	))
	for key, c := range grid {
		if c.n < 3 {
			continue // drop nearly-empty cells
		}
		meanR := c.r / float64(c.n)
		meanZ := c.redshift / float64(c.n)
		likelihood := meanZ * (25 - meanR) // brighter + redder ⇒ higher score
		cells.MustAppend(
			relation.F(float64(key[0])/float64(gridSize)*360),
			relation.F(float64(key[1])/float64(gridSize)*180-90),
			relation.F(float64(c.n)),
			relation.F(meanR),
			relation.F(meanZ),
			relation.F(likelihood),
		)
	}
	return cells
}
