// Night sky: the paper's Example 2, on the paq SDK. An astrophysicist
// looks for sets of sky-grid cells that may contain unseen quasars: the
// overall redshift of the selected cells must fall in a window, and
// sets are ranked by their total quasar-likelihood score.
//
// The sky is divided into grid cells (one tuple per cell, aggregating
// the synthetic Galaxy catalog), and the package query picks the best
// set of eight cells. The example evaluates the query both with DIRECT
// and with SKETCHREFINE — two sessions over the same cells table, the
// second lazily warming a quad-tree partitioning — and streams the
// DIRECT solve's improving incumbents, the SDK's anytime-results hook.
//
// Run with: go run ./examples/nightsky
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/relation"
	"repro/internal/workload"
	"repro/paq"
)

const query = `
SELECT PACKAGE(C) AS P
FROM cells C REPEAT 0
SUCH THAT COUNT(P.*) = 8 AND
          SUM(P.redshift) BETWEEN 6.0 AND 9.0 AND
          MAX(P.brightness) <= 20.5
MAXIMIZE SUM(P.likelihood)`

func main() {
	cells := buildCellGrid(40000, 40) // 40×40 grid over a 40k-galaxy catalog
	fmt.Printf("sky grid: %d non-empty cells\n", cells.Len())

	ctx := context.Background()
	opts := []paq.Option{
		paq.WithTimeLimit(30 * time.Second),
		paq.WithNodeLimit(100000),
	}

	direct, err := paq.Open(paq.Table(cells), append(opts, paq.WithMethod(paq.MethodDirect))...)
	if err != nil {
		log.Fatal(err)
	}
	dStmt, err := direct.Prepare(query)
	if err != nil {
		log.Fatal(err)
	}
	dRes, err := dStmt.Execute(ctx, paq.WithIncumbent(func(inc paq.Incumbent) {
		fmt.Printf("  DIRECT incumbent %d: likelihood %.2f after %v\n",
			inc.Seq, inc.Objective, inc.Elapsed.Round(time.Millisecond))
	}))
	if err != nil {
		log.Fatal("DIRECT: ", err)
	}

	sketchSess, err := paq.Open(paq.Table(cells), append(opts,
		paq.WithMethod(paq.MethodSketchRefine),
		paq.WithPartitionAttrs("redshift", "likelihood", "brightness"),
	)...)
	if err != nil {
		log.Fatal(err)
	}
	sStmt, err := sketchSess.Prepare(query)
	if err != nil {
		log.Fatal(err)
	}
	sRes, err := sStmt.Execute(ctx)
	if err != nil {
		log.Fatal("SKETCHREFINE: ", err)
	}

	fmt.Printf("DIRECT:       likelihood %.2f in %v (%d incumbents)\n",
		dRes.Objective, dRes.Time.Round(time.Millisecond), dRes.Incumbents)
	fmt.Printf("SKETCHREFINE: likelihood %.2f in %v (ratio %.3f)\n",
		sRes.Objective, sRes.Time.Round(time.Millisecond), dRes.Objective/sRes.Objective)
	fmt.Println("selected cells (SketchRefine):")
	for _, row := range sRes.Rows {
		fmt.Printf("  cell(ra=%3.0f°, dec=%+3.0f°) galaxies=%4.0f redshift=%.2f likelihood=%.2f\n",
			cells.Float(row, 0), cells.Float(row, 1), cells.Float(row, 2),
			cells.Float(row, 4), cells.Float(row, 5))
	}
}

// buildCellGrid aggregates a synthetic galaxy catalog into sky-grid cells
// with per-cell counts, mean brightness, mean redshift, and a
// quasar-likelihood score (bright cells with high mean redshift score
// higher).
func buildCellGrid(galaxies, gridSize int) *relation.Relation {
	cat := workload.Galaxy(galaxies, 11)
	raIdx := cat.Schema().Lookup("ra")
	decIdx := cat.Schema().Lookup("dec")
	rIdx := cat.Schema().Lookup("r")
	zIdx := cat.Schema().Lookup("redshift")

	type cell struct {
		n           int
		r, redshift float64
	}
	grid := make(map[[2]int]*cell)
	for row := 0; row < cat.Len(); row++ {
		i := int(cat.Float(row, raIdx) / 360 * float64(gridSize))
		j := int((cat.Float(row, decIdx) + 90) / 180 * float64(gridSize))
		key := [2]int{i, j}
		c := grid[key]
		if c == nil {
			c = &cell{}
			grid[key] = c
		}
		c.n++
		c.r += cat.Float(row, rIdx)
		c.redshift += cat.Float(row, zIdx)
	}

	cells := relation.New("cells", mustSchema(
		relation.Column{Name: "ra", Type: relation.Float},
		relation.Column{Name: "dec", Type: relation.Float},
		relation.Column{Name: "galaxies", Type: relation.Float},
		relation.Column{Name: "brightness", Type: relation.Float},
		relation.Column{Name: "redshift", Type: relation.Float},
		relation.Column{Name: "likelihood", Type: relation.Float},
	))
	for key, c := range grid {
		if c.n < 3 {
			continue // drop nearly-empty cells
		}
		meanR := c.r / float64(c.n)
		meanZ := c.redshift / float64(c.n)
		likelihood := meanZ * (25 - meanR) // brighter + redder ⇒ higher score
		mustAppend(cells,
			relation.F(float64(key[0])/float64(gridSize)*360),
			relation.F(float64(key[1])/float64(gridSize)*180-90),
			relation.F(float64(c.n)),
			relation.F(meanR),
			relation.F(meanZ),
			relation.F(likelihood),
		)
	}
	return cells
}

// mustSchema and mustAppend build the example's constant table; an
// error here is a broken example, so panicking is fine in main.
func mustSchema(cols ...relation.Column) relation.Schema {
	s, err := relation.NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

func mustAppend(r *relation.Relation, vals ...relation.Value) {
	if err := r.Append(vals...); err != nil {
		panic(err)
	}
}
