// Portfolio: investment planning, one of the application domains the
// paper's introduction motivates, on the paq SDK. Build a bond portfolio
// of exactly 12 positions within a budget, with average risk capped, at
// least four investment-grade positions (a conditional count, expressed
// with the sub-query form), and total duration bounded — maximizing
// yield.
//
// The example demonstrates REPEAT 1 (a bond can be bought twice) and
// compares DIRECT with SKETCHREFINE; the SketchRefine session races two
// seeded refinement orders and keeps the first feasible portfolio.
//
// Run with: go run ./examples/portfolio
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/relation"
	"repro/paq"
)

const query = `
SELECT PACKAGE(B) AS P
FROM bonds B REPEAT 1
SUCH THAT COUNT(P.*) = 12 AND
          SUM(P.price) <= 10000 AND
          AVG(P.risk) <= 0.35 AND
          (SELECT COUNT(*) FROM P WHERE rating >= 4) >= 4 AND
          SUM(P.duration) BETWEEN 48 AND 96
MAXIMIZE SUM(P.yield)`

func main() {
	bonds := generateBonds(20000, 3)
	ctx := context.Background()
	opts := []paq.Option{
		paq.WithTimeLimit(30 * time.Second),
		paq.WithNodeLimit(100000),
	}

	type outcome struct {
		name string
		res  *paq.Result
	}
	var outcomes []outcome
	run := func(name string, extra ...paq.Option) *paq.Result {
		sess, err := paq.Open(paq.Table(bonds), append(append([]paq.Option{}, opts...), extra...)...)
		if err != nil {
			log.Fatal(name, ": ", err)
		}
		stmt, err := sess.Prepare(query)
		if err != nil {
			log.Fatal(name, ": ", err)
		}
		res, err := stmt.Execute(ctx)
		if err != nil {
			log.Fatal(name, ": ", err)
		}
		outcomes = append(outcomes, outcome{name: name, res: res})
		return res
	}
	run("DIRECT", paq.WithMethod(paq.MethodDirect))
	sketched := run("SKETCHREFINE",
		paq.WithMethod(paq.MethodSketchRefine),
		paq.WithPartitionAttrs("price", "risk", "duration", "yield"),
		paq.WithRacers(2),
	)

	for _, m := range outcomes {
		price, _ := relation.WeightedAggregate(bonds, relation.Sum, "price", m.res.Rows, m.res.Mult)
		risk, _ := relation.WeightedAggregate(bonds, relation.Avg, "risk", m.res.Rows, m.res.Mult)
		fmt.Printf("%-12s %2d positions, cost %8.0f, avg risk %.3f, yield %7.2f  (%v)\n",
			m.name, m.res.Size, price, risk, m.res.Objective, m.res.Time.Round(time.Millisecond))
	}

	fmt.Println("\nSketchRefine portfolio:")
	for k, row := range sketched.Rows {
		fmt.Printf("  %d× bond-%05d price %6.0f yield %5.2f risk %.2f rating %d duration %4.1fy\n",
			sketched.Mult[k], row,
			bonds.Float(row, 0), bonds.Float(row, 1), bonds.Float(row, 2),
			bonds.IntColumn(3)[row], bonds.Float(row, 4))
	}
}

// generateBonds synthesizes a bond universe: price, yield (correlated
// with risk), risk, rating (5 = AAA-ish), and duration.
func generateBonds(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	bonds := relation.New("bonds", mustSchema(
		relation.Column{Name: "price", Type: relation.Float},
		relation.Column{Name: "yield", Type: relation.Float},
		relation.Column{Name: "risk", Type: relation.Float},
		relation.Column{Name: "rating", Type: relation.Int},
		relation.Column{Name: "duration", Type: relation.Float},
	))
	for i := 0; i < n; i++ {
		risk := rng.Float64() * 0.8
		yield := 1.5 + risk*8 + rng.NormFloat64()*0.7 // risk premium + noise
		if yield < 0.1 {
			yield = 0.1
		}
		rating := 5 - int(risk*5) - rng.Intn(2)
		if rating < 1 {
			rating = 1
		}
		mustAppend(bonds,
			relation.F(200+rng.Float64()*1800),
			relation.F(yield),
			relation.F(risk),
			relation.I(int64(rating)),
			relation.F(1+rng.Float64()*11),
		)
	}
	return bonds
}

// mustSchema and mustAppend build the example's constant table; an
// error here is a broken example, so panicking is fine in main.
func mustSchema(cols ...relation.Column) relation.Schema {
	s, err := relation.NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

func mustAppend(r *relation.Relation, vals ...relation.Value) {
	if err := r.Append(vals...); err != nil {
		panic(err)
	}
}
