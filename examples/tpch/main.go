// TPC-H: runs the paper's TPC-H benchmark workload end to end on the
// synthetic pre-joined table through the paq SDK — per-query base
// tables (Figure 3), one session (and offline partitioning) per table,
// and DIRECT vs SKETCHREFINE for each of the seven queries, printing a
// miniature of Figure 6.
//
// Run with: go run ./examples/tpch [-n 40000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
	"repro/paq"
)

func main() {
	n := flag.Int("n", 40000, "size of the pre-joined TPC-H table")
	flag.Parse()

	full := workload.TPCH(*n, 1)
	queries, err := workload.TPCHQueries(full)
	if err != nil {
		log.Fatal(err)
	}
	attrs := workload.WorkloadAttrs(queries)
	opts := []paq.Option{
		paq.WithTimeLimit(60 * time.Second),
		paq.WithNodeLimit(100000),
		paq.WithPartitionAttrs(attrs...),
	}

	fmt.Printf("TPC-H workload on %d tuples (workload attributes: %v)\n\n", full.Len(), attrs)
	fmt.Printf("%-4s %9s %12s %12s %8s\n", "Q", "rows", "DIRECT", "SKETCHREF", "ratio")
	for _, q := range queries {
		rel := workload.QueryTable(full, q)
		sess, err := paq.Open(paq.Table(rel), opts...)
		if err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}

		ctx := context.Background()
		exec := func(m paq.Method) (*paq.Result, error) {
			stmt, err := sess.Prepare(q.PaQL, paq.WithMethod(m))
			if err != nil {
				return nil, err
			}
			return stmt.Execute(ctx)
		}
		dRes, dErr := exec(paq.MethodDirect)
		sRes, sErr := exec(paq.MethodSketchRefine)

		ratio := "—"
		if dErr == nil && sErr == nil {
			r := dRes.Objective / sRes.Objective
			if !q.Maximize {
				r = sRes.Objective / dRes.Objective
			}
			ratio = fmt.Sprintf("%.3f", r)
		}
		cell := func(res *paq.Result, err error) string {
			if err != nil {
				return "FAIL"
			}
			return res.Time.Round(time.Millisecond).String()
		}
		fmt.Printf("%-4s %9d %12s %12s %8s\n",
			q.Name, rel.Len(), cell(dRes, dErr), cell(sRes, sErr), ratio)
	}
}
