// TPC-H: runs the paper's TPC-H benchmark workload end to end on the
// synthetic pre-joined table — per-query base tables (Figure 3), one
// offline partitioning per table, and DIRECT vs SKETCHREFINE for each of
// the seven queries, printing a miniature of Figure 6.
//
// Run with: go run ./examples/tpch [-n 40000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/ilp"
	"repro/internal/partition"
	"repro/internal/sketchrefine"
	"repro/internal/translate"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 40000, "size of the pre-joined TPC-H table")
	flag.Parse()

	full := workload.TPCH(*n, 1)
	queries, err := workload.TPCHQueries(full)
	if err != nil {
		log.Fatal(err)
	}
	attrs := workload.WorkloadAttrs(queries)
	opt := ilp.Options{TimeLimit: 60 * time.Second, MaxNodes: 100000, Gap: 1e-4}

	fmt.Printf("TPC-H workload on %d tuples (workload attributes: %v)\n\n", full.Len(), attrs)
	fmt.Printf("%-4s %9s %12s %12s %8s\n", "Q", "rows", "DIRECT", "SKETCHREF", "ratio")
	for _, q := range queries {
		rel := workload.QueryTable(full, q)
		spec, err := translate.Compile(q.PaQL, rel)
		if err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}
		part, err := partition.Build(rel, partition.Options{
			Attrs:         attrs,
			SizeThreshold: rel.Len()/10 + 1,
		})
		if err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}

		ctx := context.Background()
		dRes := engine.New(engine.Direct{Opt: opt}).Evaluate(ctx, spec)
		dPkg, dTime, dErr := dRes.Pkg, dRes.Time, dRes.Err
		sRes := engine.New(engine.SketchRefine{
			Part: part,
			Opt:  sketchrefine.Options{Solver: opt, HybridSketch: true},
		}).Evaluate(ctx, spec)
		sPkg, sTime, sErr := sRes.Pkg, sRes.Time, sRes.Err

		ratio := "—"
		if dErr == nil && sErr == nil {
			od, _ := dPkg.ObjectiveValue(spec)
			os, _ := sPkg.ObjectiveValue(spec)
			r := od / os
			if !q.Maximize {
				r = os / od
			}
			ratio = fmt.Sprintf("%.3f", r)
		}
		cell := func(d time.Duration, err error) string {
			if err != nil {
				return "FAIL"
			}
			return d.Round(time.Millisecond).String()
		}
		fmt.Printf("%-4s %9d %12s %12s %8s\n",
			q.Name, rel.Len(), cell(dTime, dErr), cell(sTime, sErr), ratio)
	}
}
