// Quickstart: the paper's running example (Example 1, the meal planner),
// on the paq SDK.
//
// A dietitian wants three gluten-free meals totalling 2.0–2.5 kcal
// (thousands), minimizing saturated fat. The program builds the Recipes
// relation, opens a paq session over it, prepares the PaQL query (the
// plan says DIRECT was chosen and why), executes it, and prints the
// chosen package.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/relation"
	"repro/paq"
)

const query = `
SELECT PACKAGE(R) AS P
FROM Recipes R REPEAT 0
WHERE R.gluten = 'free'
SUCH THAT COUNT(P.*) = 3 AND
          SUM(P.kcal) BETWEEN 2.0 AND 2.5
MINIMIZE SUM(P.saturated_fat)`

func main() {
	recipes := relation.New("Recipes", mustSchema(
		relation.Column{Name: "name", Type: relation.String},
		relation.Column{Name: "gluten", Type: relation.String},
		relation.Column{Name: "kcal", Type: relation.Float},
		relation.Column{Name: "saturated_fat", Type: relation.Float},
	))
	for _, m := range []struct {
		name, gluten string
		kcal, fat    float64
	}{
		{"lentil soup", "free", 0.45, 0.4},
		{"grilled salmon", "free", 0.76, 1.9},
		{"rice bowl", "free", 0.72, 0.3},
		{"pasta carbonara", "full", 0.95, 7.2},
		{"steak frites", "free", 1.05, 8.1},
		{"quinoa salad", "free", 0.50, 0.7},
		{"roast chicken", "free", 0.81, 2.4},
		{"bread pudding", "full", 0.66, 3.9},
		{"tofu stir fry", "free", 0.58, 0.9},
		{"fruit plate", "free", 0.30, 0.1},
	} {
		mustAppend(recipes, relation.S(m.name), relation.S(m.gluten), relation.F(m.kcal), relation.F(m.fat))
	}

	sess, err := paq.Open(paq.Table(recipes))
	if err != nil {
		log.Fatal(err)
	}
	stmt, err := sess.Prepare(query)
	if err != nil {
		log.Fatal(err)
	}
	res, err := stmt.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Daily meal plan:")
	for k, row := range res.Rows {
		fmt.Printf("  %d× %-16s kcal %.2f  sat.fat %.1f\n",
			res.Mult[k], recipes.Str(row, 0), recipes.Float(row, 2), recipes.Float(row, 3))
	}
	kcal, _ := relation.WeightedAggregate(recipes, relation.Sum, "kcal", res.Rows, res.Mult)
	fmt.Printf("total: %.2f kcal, %.1f saturated fat (ILP: %d vars, %d nodes; plan: %s)\n",
		kcal, res.Objective, res.Stats.Vars, res.Stats.SolverNodes, stmt.Plan().Method)
}

// mustSchema and mustAppend build the example's constant table; an
// error here is a broken example, so panicking is fine in main.
func mustSchema(cols ...relation.Column) relation.Schema {
	s, err := relation.NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

func mustAppend(r *relation.Relation, vals ...relation.Value) {
	if err := r.Append(vals...); err != nil {
		panic(err)
	}
}
