// Quickstart: the paper's running example (Example 1, the meal planner).
//
// A dietitian wants three gluten-free meals totalling 2.0–2.5 kcal
// (thousands), minimizing saturated fat. The program builds the Recipes
// relation, compiles the PaQL query, evaluates it with DIRECT, and prints
// the chosen package.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/ilp"
	"repro/internal/relation"
	"repro/internal/translate"
)

const query = `
SELECT PACKAGE(R) AS P
FROM Recipes R REPEAT 0
WHERE R.gluten = 'free'
SUCH THAT COUNT(P.*) = 3 AND
          SUM(P.kcal) BETWEEN 2.0 AND 2.5
MINIMIZE SUM(P.saturated_fat)`

func main() {
	recipes := relation.New("Recipes", relation.NewSchema(
		relation.Column{Name: "name", Type: relation.String},
		relation.Column{Name: "gluten", Type: relation.String},
		relation.Column{Name: "kcal", Type: relation.Float},
		relation.Column{Name: "saturated_fat", Type: relation.Float},
	))
	for _, m := range []struct {
		name, gluten string
		kcal, fat    float64
	}{
		{"lentil soup", "free", 0.45, 0.4},
		{"grilled salmon", "free", 0.76, 1.9},
		{"rice bowl", "free", 0.72, 0.3},
		{"pasta carbonara", "full", 0.95, 7.2},
		{"steak frites", "free", 1.05, 8.1},
		{"quinoa salad", "free", 0.50, 0.7},
		{"roast chicken", "free", 0.81, 2.4},
		{"bread pudding", "full", 0.66, 3.9},
		{"tofu stir fry", "free", 0.58, 0.9},
		{"fruit plate", "free", 0.30, 0.1},
	} {
		recipes.MustAppend(relation.S(m.name), relation.S(m.gluten), relation.F(m.kcal), relation.F(m.fat))
	}

	spec, err := translate.Compile(query, recipes)
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(engine.Direct{Opt: ilp.Options{}})
	res := eng.Evaluate(context.Background(), spec)
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	pkg, stats := res.Pkg, res.Stats

	fmt.Println("Daily meal plan:")
	for k, row := range pkg.Rows {
		fmt.Printf("  %d× %-16s kcal %.2f  sat.fat %.1f\n",
			pkg.Mult[k], recipes.Str(row, 0), recipes.Float(row, 2), recipes.Float(row, 3))
	}
	kcal, _ := relation.WeightedAggregate(recipes, relation.Sum, "kcal", pkg.Rows, pkg.Mult)
	fat, _ := pkg.ObjectiveValue(spec)
	fmt.Printf("total: %.2f kcal, %.1f saturated fat (ILP: %d vars, %d nodes)\n",
		kcal, fat, stats.Vars, stats.SolverNodes)
}
