package paq_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/paq"
)

// TestCloneBatchRacesMutations drives ExecuteBatch on a clone while
// the original session mutates the shared relation — the service
// pattern of solving on one handle while ingestion runs on another.
// Clones share the relation's write lock, so every Execute must see a
// consistent snapshot; the race detector (this test's real assertion)
// catches any access outside it.
func TestCloneBatchRacesMutations(t *testing.T) {
	sess, err := paq.Open(paq.Table(durTable(t, 150, 3)), durOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := sess.Clone()
	if err != nil {
		t.Fatal(err)
	}
	stmts := make([]*paq.Stmt, 4)
	for i := range stmts {
		if stmts[i], err = clone.Prepare(durQuery); err != nil {
			t.Fatal(err)
		}
	}

	const mutOps = 120
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		live := sess.Rel().AllRows()
		for op := 0; op < mutOps; op++ {
			switch k := rng.Float64(); {
			case k < 0.5 || len(live) < 60:
				if _, _, err := sess.InsertRows([][]relation.Value{durRow(rng)}); err != nil {
					t.Errorf("insert op %d: %v", op, err)
					return
				}
				live = append(live, sess.Rel().Len()-1)
			default:
				i := rng.Intn(len(live))
				row := live[i]
				live = append(live[:i], live[i+1:]...)
				if _, err := sess.DeleteRows([]int{row}); err != nil {
					t.Errorf("delete op %d: %v", op, err)
					return
				}
			}
		}
	}()

	// Batches race the mutation stream; a mid-stream solve may land on
	// any version, so only panics and data races are failures here.
	ctx := context.Background()
	for round := 0; round < 6; round++ {
		for _, res := range clone.ExecuteBatch(ctx, stmts) {
			if res == nil {
				t.Fatal("ExecuteBatch left a nil result slot")
			}
		}
	}
	wg.Wait()

	// Quiesced, the clone must solve cleanly over the mutated relation.
	for i, res := range clone.ExecuteBatch(ctx, stmts) {
		if res == nil {
			t.Fatal("ExecuteBatch left a nil result slot")
		}
		if res.Err != nil {
			t.Fatalf("statement %d after quiesce: %v", i, res.Err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("statement %d returned an empty package", i)
		}
	}
}
