package paq

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/store"
)

// Package is the answer to a package query: distinct tuple rows of the
// input relation with their multiplicities.
type Package = core.Package

// Stats records the work done by one evaluation (ILP sizes, solver
// nodes, subproblems, refinement backtracks).
type Stats = core.EvalStats

// CacheStats is a snapshot of one strategy's solution-cache counters.
type CacheStats = engine.CacheStats

// Solver is the pluggable evaluation-strategy interface of the
// underlying engine; it is exported for test seams (see
// Session.SetSolver), not for everyday use.
type Solver = engine.Solver

// Source is where Open loads the input relation from.
type Source interface {
	load() (*relation.Relation, error)
}

type csvSource struct{ path string }

func (s csvSource) load() (*relation.Relation, error) { return relation.LoadCSV(s.path) }

// CSV sources the input relation from a typed CSV file (header fields
// are name:type with type f=float, i=int, s=string, as written by the
// datagen tool).
func CSV(path string) Source { return csvSource{path: path} }

type tableSource struct{ rel *relation.Relation }

func (s tableSource) load() (*relation.Relation, error) {
	if s.rel == nil {
		return nil, fmt.Errorf("paq: nil relation")
	}
	return s.rel, nil
}

// Table sources the input relation from an in-memory table.
func Table(rel *relation.Relation) Source { return tableSource{rel: rel} }

// Session is an open package-query session over one input relation. It
// lazily builds and caches offline partitionings (one per distinct
// attribute set) and keeps one solution-caching engine per evaluation
// strategy, all shared by every statement prepared on it. A Session is
// safe for concurrent use.
type Session struct {
	rel *relation.Relation
	cfg config

	// dataMu serializes dataset mutations (InsertRows, DeleteRows,
	// UpdateRows — write side) against snapshot pinning and planning
	// (Prepare, and the brief pin at the start of Execute — read side).
	// It is shared by every Clone of the session, since clones share the
	// relation and its partitionings. Solves do NOT run under it: they
	// pin an immutable relation snapshot (plus a partitioning view) and
	// evaluate lock-free, so a mutation stream never stalls behind an
	// in-flight solve and vice versa.
	dataMu *sync.RWMutex

	// pin caches the current-version relation snapshot, shared by every
	// Clone (one snapshot per relation version serves all siblings).
	pin *pinCache

	mu        sync.Mutex
	parts     map[string]*lazyPart
	engines   map[string]*engine.Engine
	overrides map[Method]*engine.Engine

	// adv is the session's adaptive planner + partitioning advisor (nil
	// with WithoutAdvisor). partBuilds counts the offline partitioning
	// builds this session paid; advShared counts queries served by an
	// overlapping warm superset instead of a build; advPrewarmed and
	// advEvicted count AdvisorMaintain's actions; partsDirty marks warm
	// sets built or evicted since the last snapshot (so a restart keeps
	// them). All five counters are guarded by mu.
	adv          *advisor.Advisor
	partBuilds   uint64
	advShared    uint64
	advPrewarmed uint64
	advEvicted   uint64
	partsDirty   bool

	incumbents atomic.Uint64

	// st is the durability store (nil for a purely in-memory session).
	// It is shared by every Clone, like the relation it persists; all
	// store operations run under the dataMu write lock except DurStats
	// reads (read lock). warmParts and compactions are durability
	// counters (see DurStats).
	st          *store.Store
	warmParts   int
	compactions uint64

	// sibs registers every session sharing this relation (the original
	// and all its Clones). Compaction renumbers the shared relation, so
	// it must remap the partitionings of every sibling — a clone with a
	// different τ holds its own — not just the compacting session's.
	sibs *siblings
}

// siblings is the shared registry of sessions over one relation.
// Sessions are only ever added (they have no end-of-life separate from
// the relation's).
type siblings struct {
	mu  sync.Mutex
	all []*Session
}

func (sb *siblings) add(s *Session) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.all = append(sb.all, s)
}

func (sb *siblings) list() []*Session {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return append([]*Session(nil), sb.all...)
}

// pinCache caches one immutable relation snapshot per version so that
// pinning a solve at steady state (no mutation since the last pin) is
// a single atomic load — no allocation, no copying. It is shared by
// every Clone of a session, exactly like the relation it snapshots.
type pinCache struct {
	// mu serializes snapshot creation (Relation.Snapshot writes the
	// head's copy-on-write flags, so concurrent read-locked pinners must
	// not race it).
	mu   sync.Mutex
	snap atomic.Pointer[relation.Relation]

	// pins counts executions pinned; waitNanos and maxWait record the
	// time spent acquiring the dataset read lock while pinning — the
	// only instant a solve can wait on the mutation lock, so a bounded
	// maxWait is the observable proof that ingest never blocks solves
	// for longer than one in-flight batch apply.
	pins      atomic.Uint64
	waitNanos atomic.Int64
	maxWait   atomic.Int64
}

// observeWait records one pin's lock-acquisition wait.
func (pc *pinCache) observeWait(wait time.Duration) {
	pc.pins.Add(1)
	w := int64(wait)
	pc.waitNanos.Add(w)
	for {
		cur := pc.maxWait.Load()
		if w <= cur || pc.maxWait.CompareAndSwap(cur, w) {
			return
		}
	}
}

// PinStats reports how executions interacted with the mutation lock
// while pinning their snapshots. Pins counts pinned executions (shared
// across Clones, like the snapshot cache itself); WaitTotal and WaitMax
// are the cumulative and worst-case time an execution spent acquiring
// the dataset read lock before its solve went lock-free. A WaitMax
// bounded by one mutation batch's apply time is the expected steady
// state; large values mean solves are stalling behind ingest.
type PinStats struct {
	Pins      uint64
	WaitTotal time.Duration
	WaitMax   time.Duration
}

// PinStats snapshots the session's pin-wait counters.
func (s *Session) PinStats() PinStats {
	return PinStats{
		Pins:      s.pin.pins.Load(),
		WaitTotal: time.Duration(s.pin.waitNanos.Load()),
		WaitMax:   time.Duration(s.pin.maxWait.Load()),
	}
}

// at returns the cached snapshot of rel at its current version,
// refreshing the cache if a mutation has moved the version since the
// last pin. The caller must hold the dataset read lock (so the version
// cannot move underneath the check).
func (pc *pinCache) at(rel *relation.Relation) *relation.Relation {
	if snap := pc.snap.Load(); snap != nil && snap.Version() == rel.Version() {
		return snap
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if snap := pc.snap.Load(); snap != nil && snap.Version() == rel.Version() {
		return snap
	}
	snap := rel.Snapshot()
	pc.snap.Store(snap)
	return snap
}

// lazyPart builds one partitioning at most once, racing callers
// blocking on the same build. Once built, maint maintains it
// incrementally under dataset mutations (created on the first
// mutation; only ever touched under the session's write lock).
type lazyPart struct {
	once  sync.Once
	part  *partition.Partitioning
	err   error
	maint *partition.Maintainer
	// built flips to true when part is usable (successful build or
	// warm-start from a snapshot). It lets the advisor's warm-set lookup
	// check availability without risking a blocking build under a lock:
	// atomic Load after the builder's Store gives the happens-before
	// needed to read part lock-free.
	built atomic.Bool
	// view caches the frozen partitioning view bound to the current
	// pinned relation snapshot. Snapshot pointers are one-per-version
	// (see pinCache), so pointer equality on view.Rel is exactly "view
	// is current". viewMu serializes rebuilds after a mutation.
	viewMu sync.Mutex
	view   atomic.Pointer[partition.Partitioning]
}

// viewAt returns (building at most once per version) the frozen view of
// lp.part bound to the pinned snapshot snap. The caller must hold the
// dataset read lock and have pinned snap under that same lock.
func (lp *lazyPart) viewAt(snap *relation.Relation) *partition.Partitioning {
	if v := lp.view.Load(); v != nil && v.Rel == snap {
		return v
	}
	lp.viewMu.Lock()
	defer lp.viewMu.Unlock()
	if v := lp.view.Load(); v != nil && v.Rel == snap {
		return v
	}
	v := lp.part.View(snap)
	lp.view.Store(v)
	return v
}

// Open loads and validates the input relation and returns a session
// over it. Partitionings are built lazily on first need (or eagerly
// with WithWarmPartitioning); solver budgets, the evaluation method,
// and partitioning shape come from the options.
//
// With WithDurability, Open first looks for durable state in the
// directory: if a snapshot exists, the session recovers from it —
// snapshot plus WAL replay, partitionings warm-started — and the
// source is not consulted (it may be nil); otherwise the source is
// loaded and a baseline snapshot written so later mutations have a
// durable base.
func Open(src Source, opts ...Option) (*Session, error) {
	cfg := defaults()
	for _, o := range opts {
		if err := o.apply(&cfg); err != nil {
			return nil, err
		}
	}
	var st *store.Store
	var boot *store.Snapshot
	if cfg.durDir != "" {
		var err error
		st, err = store.Open(cfg.durDir)
		if err != nil {
			return nil, err
		}
		boot = st.BootSnapshot()
	}
	var rel *relation.Relation
	if boot != nil {
		rel = boot.Rel
		if rel.Len() == 0 {
			// Mirror the empty-source rejection below: a store whose last
			// snapshot holds zero rows (every row deleted, then closed)
			// reopens to a session no query could run against.
			st.Close()
			return nil, fmt.Errorf("paq: durable state in %s holds an empty relation %q", cfg.durDir, rel.Name())
		}
	} else {
		if src == nil {
			if st != nil {
				st.Close()
				return nil, fmt.Errorf("paq: nil source and no durable state in %s", cfg.durDir)
			}
			return nil, fmt.Errorf("paq: nil source")
		}
		var err error
		rel, err = src.load()
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, err
		}
		if rel.Len() == 0 {
			if st != nil {
				st.Close()
			}
			return nil, fmt.Errorf("paq: input relation %q is empty", rel.Name())
		}
	}
	s := &Session{
		rel:     rel,
		cfg:     cfg,
		dataMu:  &sync.RWMutex{},
		pin:     &pinCache{},
		parts:   make(map[string]*lazyPart),
		engines: make(map[string]*engine.Engine),
		st:      st,
		sibs:    &siblings{},
	}
	if !cfg.noAdvisor {
		s.adv = advisor.New(advisor.Config{})
	}
	s.sibs.add(s)
	if boot != nil {
		if err := s.recover(boot); err != nil {
			st.Close()
			return nil, err
		}
	}
	if s.adv != nil && st != nil {
		// Reload the advisor's persisted evidence; a missing or corrupt
		// sidecar just starts the advisor cold — never a recovery failure.
		if payload, err := st.LoadAdvisorState(); err == nil && payload != nil {
			_ = s.adv.RestoreState(payload)
		}
	}
	if cfg.warm {
		if _, err := s.sessionPartitioning(); err != nil {
			if st != nil {
				st.Close()
			}
			return nil, err
		}
	}
	if st != nil && boot == nil {
		// Fresh durable session: persist the baseline (data + any warm
		// partitioning) so the WAL has a snapshot to replay against.
		if err := s.Snapshot(); err != nil {
			st.Close()
			return nil, err
		}
	}
	return s, nil
}

// Rel returns the session's input relation. Treat it as read-only:
// mutate the dataset through InsertRows, DeleteRows, and UpdateRows,
// which keep the partitionings maintained and the solution caches
// coherent. Mutating the relation directly bypasses both.
func (s *Session) Rel() *relation.Relation { return s.rel }

// Clone returns a new session over the same relation with fresh engines
// and solution caches, applying any additional options on top of the
// original configuration. Already-built partitionings are shared —
// they are immutable and expensive — unless an option changes the
// partitioning shape (τ or the radius limit), in which case they are
// dropped and rebuilt lazily.
func (s *Session) Clone(opts ...Option) (*Session, error) {
	cfg := s.cfg
	for _, o := range opts {
		if err := o.apply(&cfg); err != nil {
			return nil, err
		}
	}
	c := &Session{
		rel:     s.rel,
		cfg:     cfg,
		dataMu:  s.dataMu, // clones share the relation, so they share its lock
		pin:     s.pin,    // ...and its snapshot cache (one snapshot per version)
		parts:   make(map[string]*lazyPart),
		engines: make(map[string]*engine.Engine),
		st:      s.st,   // ...and its durability store (one WAL per relation)
		sibs:    s.sibs, // ...and the sibling registry compaction remaps through
	}
	if !cfg.noAdvisor {
		// A clone learns afresh: its options may change solver budgets or
		// τ, which would invalidate the original's timing evidence.
		c.adv = advisor.New(advisor.Config{})
	}
	s.sibs.add(c)
	if cfg.tauFrac == s.cfg.tauFrac && cfg.tauAbs == s.cfg.tauAbs && cfg.radius == s.cfg.radius {
		s.mu.Lock()
		for k, p := range s.parts {
			c.parts[k] = p
		}
		s.mu.Unlock()
	}
	if cfg.warm {
		if _, err := c.sessionPartitioning(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// tau resolves the partition size threshold for this session's relation
// (fractional τ is taken of the live row count at build time).
func (s *Session) tau() int {
	if s.cfg.tauAbs > 0 {
		return s.cfg.tauAbs
	}
	return int(float64(s.rel.Live())*s.cfg.tauFrac) + 1
}

// partitionAttrsFor resolves the partitioning attributes for a query:
// the explicitly configured set, else the query's own attributes
// (coverage 1, the paper's recommended setting), else every numeric
// column.
func (s *Session) partitionAttrsFor(queryAttrs []string) []string {
	if len(s.cfg.partAttrs) > 0 {
		return s.cfg.partAttrs
	}
	if len(queryAttrs) > 0 {
		return queryAttrs
	}
	return s.numericColumns()
}

func (s *Session) numericColumns() []string {
	var attrs []string
	for i := 0; i < s.rel.Schema().Len(); i++ {
		col := s.rel.Schema().Col(i)
		if col.Type.Numeric() {
			attrs = append(attrs, col.Name)
		}
	}
	return attrs
}

// partKey canonicalizes an attribute set for the partitioning cache.
func partKey(attrs []string) string {
	lower := make([]string, len(attrs))
	for i, a := range attrs {
		lower[i] = strings.ToLower(a)
	}
	sort.Strings(lower)
	return strings.Join(lower, ",")
}

// partitioningFor returns (building at most once) the partitioning over
// the given attributes.
func (s *Session) partitioningFor(attrs []string) (*partition.Partitioning, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("paq: no numeric attributes to partition on")
	}
	key := partKey(attrs)
	s.mu.Lock()
	lp, ok := s.parts[key]
	if !ok {
		lp = &lazyPart{}
		s.parts[key] = lp
	}
	s.mu.Unlock()
	lp.once.Do(func() {
		lp.part, lp.err = partition.Build(s.rel, partition.Options{
			Attrs:         attrs,
			SizeThreshold: s.tau(),
			RadiusLimit:   s.cfg.radius,
			Workers:       s.cfg.workers,
		})
		if lp.err == nil {
			lp.built.Store(true)
			s.mu.Lock()
			s.partBuilds++
			s.partsDirty = true
			s.mu.Unlock()
		}
	})
	return lp.part, lp.err
}

// lookupWarm returns an already-built partitioning that can serve a
// query over attrs without building anything: the exact attribute set
// if warm, else the smallest advisor-prewarmed superset (a quad-tree
// over a superset of the query's attributes partitions at least as
// finely on them, so SketchRefine's radius reasoning still holds).
// shared reports whether a superset — rather than the exact set — was
// used. It never triggers a build.
func (s *Session) lookupWarm(attrs []string) (p *partition.Partitioning, shared bool, ok bool) {
	key := partKey(attrs)
	s.mu.Lock()
	defer s.mu.Unlock()
	if lp, found := s.parts[key]; found && lp.built.Load() {
		return lp.part, false, true
	}
	if s.adv == nil {
		return nil, false, false
	}
	want := strings.Split(key, ",")
	var bestKey string
	var best *lazyPart
	for k, lp := range s.parts {
		if !lp.built.Load() || !s.adv.IsPrewarmed(k) {
			continue
		}
		if !subsetOf(want, strings.Split(k, ",")) {
			continue
		}
		if best == nil || len(lp.part.Attrs) < len(best.part.Attrs) ||
			(len(lp.part.Attrs) == len(best.part.Attrs) && k < bestKey) {
			best, bestKey = lp, k
		}
	}
	if best == nil {
		return nil, false, false
	}
	return best.part, true, true
}

// subsetOf reports whether every element of want appears in have; both
// slices are sorted lowercase key components.
func subsetOf(want, have []string) bool {
	i := 0
	for _, w := range want {
		for i < len(have) && have[i] < w {
			i++
		}
		if i >= len(have) || have[i] != w {
			return false
		}
		i++
	}
	return true
}

// partitioningForQuery resolves the partitioning serving a query over
// attrs: a warm exact or prewarmed-superset partitioning when one
// exists (no build), else the usual build-once path for the exact set.
// shared reports whether an overlapping superset served instead of the
// exact set.
func (s *Session) partitioningForQuery(attrs []string) (p *partition.Partitioning, shared bool, err error) {
	if p, shared, ok := s.lookupWarm(attrs); ok {
		if shared {
			s.mu.Lock()
			s.advShared++
			s.mu.Unlock()
		}
		return p, shared, nil
	}
	p, err = s.partitioningFor(attrs)
	return p, false, err
}

// observeAttrDemand feeds the advisor's query-log miner: the attribute
// set this statement would partition on, at the current dataset
// version. No-op without an advisor.
func (s *Session) observeAttrDemand(attrs []string) {
	if s.adv == nil || len(attrs) == 0 {
		return
	}
	s.adv.ObserveSet(partKey(attrs), attrs, s.rel.Version())
}

// livePartitioning re-resolves a planned partitioning by attribute set
// at execution time. The advisor's maintenance pass may have evicted
// the one the plan captured; refining over an evicted partitioning
// would read stale row indices after a compaction, so Execute always
// goes through the live map (rebuilding on a miss).
func (s *Session) livePartitioning(planned *partition.Partitioning) (*partition.Partitioning, error) {
	lp, err := s.livePart(planned, "")
	if err != nil {
		return nil, err
	}
	return lp.part, nil
}

// livePart is livePartitioning returning the lazyPart wrapper, which
// additionally carries the per-version frozen view cache solves pin.
// key, when non-empty, is the precomputed partKey(planned.Attrs) — the
// hot pin path passes the one cached on the statement so steady-state
// pinning allocates nothing.
func (s *Session) livePart(planned *partition.Partitioning, key string) (*lazyPart, error) {
	if planned == nil {
		return nil, fmt.Errorf("paq: no partitioning planned")
	}
	if key == "" {
		key = partKey(planned.Attrs)
	}
	s.mu.Lock()
	lp, ok := s.parts[key]
	s.mu.Unlock()
	if ok && lp.built.Load() {
		return lp, nil
	}
	if _, err := s.partitioningFor(planned.Attrs); err != nil {
		return nil, err
	}
	s.mu.Lock()
	lp = s.parts[key]
	s.mu.Unlock()
	return lp, nil
}

// pinned is everything one execution needs to solve lock-free: an
// immutable relation snapshot and — for SketchRefine — the live head
// partitioning (the engine's cache identity) plus a frozen view of it
// bound to the snapshot. All three are captured under one read-lock
// acquisition, so they are mutually consistent at one version.
type pinned struct {
	snap *relation.Relation
	part *partition.Partitioning // live head partitioning (engine identity)
	view *partition.Partitioning // frozen view over snap (SketchRefine only)
}

// pinExec pins the statement's execution: a brief read lock captures
// the snapshot and partitioning view, then the lock is dropped and the
// solve proceeds against the frozen state while ingest continues on
// head. Steady state (no mutation since the last pin) allocates
// nothing — the cached snapshot and view are reused.
func (s *Session) pinExec(st *Stmt, sp *obs.Span) (pinned, error) {
	t0 := time.Now()
	s.dataMu.RLock()
	wait := time.Since(t0)
	s.pin.observeWait(wait)
	if sp != nil {
		sp.SetAttrFloat("lock_wait_ms", float64(wait)/float64(time.Millisecond))
	}
	defer s.dataMu.RUnlock()
	p := pinned{snap: s.pin.at(s.rel)}
	if st.method == MethodSketchRefine {
		// Re-resolve the partitioning by attribute set: the advisor's
		// maintenance pass may have evicted the one the plan captured,
		// and refining over an evicted copy would read row indices a
		// later compaction has renumbered.
		vsp := sp.Child("partition_view")
		lp, err := s.livePart(st.part, st.partCacheKey)
		if err != nil {
			vsp.Finish()
			return pinned{}, err
		}
		p.part = lp.part
		p.view = lp.viewAt(p.snap)
		if vsp != nil {
			vsp.SetAttrInt("groups", int64(p.part.NumGroups()))
			vsp.Finish()
		}
	}
	return p, nil
}

// sessionPartitioning is the session-wide partitioning: the configured
// attribute set, or every numeric column — a superset of any query's
// attributes, so it can serve arbitrary queries (the setting a
// long-lived service wants warm).
func (s *Session) sessionPartitioning() (*partition.Partitioning, error) {
	return s.partitioningFor(s.partitionAttrsFor(nil))
}

// PartitionInfo describes one offline partitioning (for EXPLAIN plans
// and service dashboards).
type PartitionInfo struct {
	Attrs  []string `json:"attrs"`
	Groups int      `json:"groups"`
	Tau    int      `json:"tau"`
	Radius float64  `json:"radius,omitempty"`
	// BuildMS is the offline build cost in milliseconds.
	BuildMS float64 `json:"build_ms"`
}

func infoOf(p *partition.Partitioning) *PartitionInfo {
	return &PartitionInfo{
		Attrs:   append([]string(nil), p.Attrs...),
		Groups:  p.NumGroups(),
		Tau:     p.Tau,
		Radius:  p.Omega,
		BuildMS: float64(p.BuildTime.Microseconds()) / 1000,
	}
}

// Partitioning warms (if necessary) and describes the session-wide
// partitioning.
func (s *Session) Partitioning() (*PartitionInfo, error) {
	p, err := s.sessionPartitioning()
	if err != nil {
		return nil, err
	}
	return infoOf(p), nil
}

// engineFor returns (creating at most once) the engine serving a
// method; part must be non-nil for MethodSketchRefine and is part of
// the engine's identity, so distinct partitionings get distinct
// solution caches.
func (s *Session) engineFor(m Method, part *partition.Partitioning) *engine.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.overrides[m]; ok {
		return e
	}
	key := string(m)
	if m == MethodSketchRefine {
		key += "|" + partKey(part.Attrs)
	}
	if e, ok := s.engines[key]; ok {
		return e
	}
	var solver engine.Solver
	switch m {
	case MethodNaive:
		solver = engine.Naive{Opt: naive.Options{Timeout: s.cfg.timeLimit}}
	case MethodSketchRefine:
		solver = engine.SketchRefine{
			Part:   part,
			Opt:    s.sketchOptions(),
			Racers: s.cfg.racers,
		}
	default:
		solver = engine.Direct{Opt: s.cfg.solverOptions()}
	}
	e := engine.New(solver)
	e.Workers = s.cfg.workers
	e.NoCache = s.cfg.noCache
	e.MaxCacheEntries = s.cfg.cacheEntries
	s.engines[key] = e
	return e
}

// SetSolver replaces the engine serving a method with one wrapping the
// given solver — a seam for tests that need to inject instrumented or
// blocking strategies. The injected engine never caches, so every
// execution reaches the solver. It must be called before the session
// serves traffic.
func (s *Session) SetSolver(m Method, solver Solver) {
	e := engine.New(solver)
	e.Workers = s.cfg.workers
	e.NoCache = true
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.overrides == nil {
		s.overrides = make(map[Method]*engine.Engine)
	}
	s.overrides[m] = e
}

// CacheStats snapshots the solution-cache counters of every engine the
// session has instantiated, aggregated per method.
func (s *Session) CacheStats() map[Method]CacheStats {
	s.mu.Lock()
	engines := make(map[Method][]*engine.Engine)
	for key, e := range s.engines {
		m := Method(strings.SplitN(key, "|", 2)[0])
		engines[m] = append(engines[m], e)
	}
	for m, e := range s.overrides {
		engines[m] = append(engines[m], e)
	}
	s.mu.Unlock()
	out := make(map[Method]CacheStats, len(engines))
	for m, es := range engines {
		var agg CacheStats
		for _, e := range es {
			cs := e.Stats()
			agg.Hits += cs.Hits
			agg.Misses += cs.Misses
			agg.Evictions += cs.Evictions
			agg.Invalidations += cs.Invalidations
			agg.Entries += cs.Entries
		}
		out[m] = agg
	}
	return out
}

// Incumbents reports the total number of improving incumbents streamed
// by this session's executions — the anytime-results counter a serving
// layer surfaces in its statistics.
func (s *Session) Incumbents() uint64 { return s.incumbents.Load() }

// RadiusForEpsilon computes the radius limit ω that guarantees a
// (1±ε)-style approximation bound over the given attributes (Equation 1
// of the paper); pass the result to WithRadiusLimit.
func RadiusForEpsilon(rel *relation.Relation, attrs []string, eps float64, maximize bool) (float64, error) {
	return partition.RadiusForEpsilon(rel, attrs, eps, maximize)
}
