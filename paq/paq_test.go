package paq_test

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/reltest"
	"repro/internal/workload"
	"repro/paq"
)

// mealRelation builds the paper's Example 1 table (the quickstart data).
func mealRelation() *relation.Relation {
	recipes := relation.New("Recipes", reltest.Schema(
		relation.Column{Name: "name", Type: relation.String},
		relation.Column{Name: "gluten", Type: relation.String},
		relation.Column{Name: "kcal", Type: relation.Float},
		relation.Column{Name: "saturated_fat", Type: relation.Float},
	))
	for _, m := range []struct {
		name, gluten string
		kcal, fat    float64
	}{
		{"lentil soup", "free", 0.45, 0.4},
		{"grilled salmon", "free", 0.76, 1.9},
		{"rice bowl", "free", 0.72, 0.3},
		{"pasta carbonara", "full", 0.95, 7.2},
		{"steak frites", "free", 1.05, 8.1},
		{"quinoa salad", "free", 0.50, 0.7},
		{"roast chicken", "free", 0.81, 2.4},
		{"bread pudding", "full", 0.66, 3.9},
		{"tofu stir fry", "free", 0.58, 0.9},
		{"fruit plate", "free", 0.30, 0.1},
	} {
		reltest.Append(recipes, relation.S(m.name), relation.S(m.gluten), relation.F(m.kcal), relation.F(m.fat))
	}
	return recipes
}

const mealQuery = `
SELECT PACKAGE(R) AS P
FROM Recipes R REPEAT 0
WHERE R.gluten = 'free'
SUCH THAT COUNT(P.*) = 3 AND
          SUM(P.kcal) BETWEEN 2.0 AND 2.5
MINIMIZE SUM(P.saturated_fat)`

// TestMealPlannerGolden is the end-to-end golden test over the paper's
// running example: the plan snapshot (chosen method, why, ILP size) and
// the optimal objective are pinned exactly.
func TestMealPlannerGolden(t *testing.T) {
	sess, err := paq.Open(paq.Table(mealRelation()))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sess.Prepare(mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	plan := stmt.Plan()
	want := paq.Plan{
		Method:         paq.MethodDirect,
		Reason:         "auto: 8 eligible tuples fit a single ILP (threshold 2000)",
		Relation:       "Recipes",
		Rows:           10,
		Variables:      8, // the gluten-free tuples after WHERE elimination
		Constraints:    3, // COUNT = 3, plus BETWEEN lowered to GE + LE
		Repeat:         0,
		DatasetVersion: 10, // one bump per appended recipe
		Objective:      "MINIMIZE SUM(P.saturated_fat)",
		CacheKey:       "9e30d99222edee85",
	}
	// The advisor is on by default, so the first-ever decision is a cold
	// one: the heuristic's choice and reason verbatim, with the advisor's
	// record attached. Pin its shape, then compare the rest exactly.
	if a := plan.Adaptive; a == nil {
		t.Fatal("plan has no Adaptive block (advisor should be on by default)")
	} else {
		if !a.Cold || a.Probe {
			t.Errorf("first-ever decision cold=%v probe=%v, want cold non-probe", a.Cold, a.Probe)
		}
		if a.Chosen != paq.MethodDirect || a.Fallback != paq.MethodDirect {
			t.Errorf("adaptive chose %s (fallback %s), want direct/direct", a.Chosen, a.Fallback)
		}
	}
	want.Adaptive = plan.Adaptive
	got := *plan
	if got != want {
		t.Errorf("plan snapshot drifted:\n got %+v\nwant %+v", got, want)
	}

	res, err := stmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g, w := strconv.FormatFloat(res.Objective, 'g', -1, 64), "3.0999999999999996"; g != w {
		t.Errorf("objective %s, want %s", g, w)
	}
	if res.Size != 3 || res.Distinct != 3 {
		t.Errorf("package size %d/%d, want 3 distinct meals", res.Size, res.Distinct)
	}

	// A second execution of an identical statement is a cache hit with
	// the identical answer.
	again, err := sess.Prepare(mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := again.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("identical statement missed the solution cache")
	}
	if res2.Objective != res.Objective {
		t.Errorf("cached objective %g != %g", res2.Objective, res.Objective)
	}
}

// galaxyGoldens pins the exact objective values of every non-hard query
// of the Galaxy workload at a fixed scale and seed, for both methods —
// the solve path is deterministic end to end, so any drift is a
// behavior change, not noise.
var galaxyGoldens = map[string]string{
	"Q1/direct":       "5.246",
	"Q1/sketchrefine": "10.161000000000001",
	"Q3/direct":       "298.676",
	"Q3/sketchrefine": "277.021",
	"Q4/direct":       "75.759",
	"Q4/sketchrefine": "84.10900000000001",
	"Q5/direct":       "104.76599999999999",
	"Q5/sketchrefine": "48.542",
	"Q7/direct":       "33.563",
	"Q7/sketchrefine": "17.622000000000003",
}

func TestGalaxyWorkloadGolden(t *testing.T) {
	rel := workload.Galaxy(2500, 7)
	queries, err := workload.GalaxyQueries(rel)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := paq.Open(paq.Table(rel),
		paq.WithSeed(7),
		paq.WithPartitionAttrs(workload.WorkloadAttrs(queries)...))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if q.Hard {
			continue // budget-dependent at test scale
		}
		for _, m := range []paq.Method{paq.MethodDirect, paq.MethodSketchRefine} {
			key := q.Name + "/" + string(m)
			stmt, err := sess.Prepare(q.PaQL, paq.WithMethod(m))
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			if m == paq.MethodSketchRefine && stmt.Plan().Partitioning == nil {
				t.Errorf("%s: sketchrefine plan has no partitioning info", key)
			}
			res, err := stmt.Execute(context.Background())
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			if res.Truncated {
				t.Fatalf("%s: truncated at test scale (budget too small for a golden)", key)
			}
			if got, want := strconv.FormatFloat(res.Objective, 'g', -1, 64), galaxyGoldens[key]; got != want {
				t.Errorf("%s: objective %s, want golden %s", key, got, want)
			}
		}
	}
}

// TestErrorTaxonomy drives every typed error from a real internal
// failure and checks errors.Is/As contracts.
func TestErrorTaxonomy(t *testing.T) {
	galaxy := workload.Galaxy(400, 3)
	open := func(t *testing.T, opts ...paq.Option) *paq.Session {
		t.Helper()
		sess, err := paq.Open(paq.Table(galaxy), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	exec := func(t *testing.T, sess *paq.Session, query string, ctx context.Context) error {
		t.Helper()
		stmt, err := sess.Prepare(query)
		if err != nil {
			t.Fatalf("prepare: %v", err)
		}
		if ctx == nil {
			ctx = context.Background()
		}
		_, err = stmt.Execute(ctx)
		if err == nil {
			t.Fatal("execution unexpectedly succeeded")
		}
		return err
	}
	infeasibleQ := `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 3 AND SUM(P.redshift) <= -1 MINIMIZE SUM(P.r)`
	bigQ := `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 12 AND SUM(P.r) BETWEEN 150 AND 200 MINIMIZE SUM(P.redshift)`

	t.Run("infeasible-direct", func(t *testing.T) {
		err := exec(t, open(t, paq.WithMethod(paq.MethodDirect)), infeasibleQ, nil)
		if !errors.Is(err, paq.ErrInfeasible) {
			t.Errorf("err %v, want ErrInfeasible", err)
		}
		if errors.Is(err, paq.ErrFalseInfeasible) {
			t.Errorf("DIRECT verdict wrongly marked false-infeasible: %v", err)
		}
	})
	t.Run("false-infeasible-sketchrefine", func(t *testing.T) {
		err := exec(t, open(t, paq.WithMethod(paq.MethodSketchRefine)), infeasibleQ, nil)
		if !errors.Is(err, paq.ErrFalseInfeasible) {
			t.Errorf("err %v, want ErrFalseInfeasible", err)
		}
		// The subtype contract: a false-infeasible verdict also satisfies
		// the plain infeasibility check.
		if !errors.Is(err, paq.ErrInfeasible) {
			t.Errorf("ErrFalseInfeasible does not satisfy errors.Is(_, ErrInfeasible): %v", err)
		}
	})
	t.Run("timeout", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
		defer cancel()
		time.Sleep(time.Millisecond) // ensure the deadline has passed
		err := exec(t, open(t, paq.WithMethod(paq.MethodDirect)), bigQ, ctx)
		if !errors.Is(err, paq.ErrTimeout) {
			t.Errorf("err %v, want ErrTimeout", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("cause chain lost context.DeadlineExceeded: %v", err)
		}
	})
	t.Run("budget-nodes", func(t *testing.T) {
		err := exec(t, open(t, paq.WithMethod(paq.MethodDirect), paq.WithNodeLimit(1)), bigQ, nil)
		if !errors.Is(err, paq.ErrBudget) {
			t.Errorf("err %v, want ErrBudget", err)
		}
	})
	t.Run("budget-naive-timeout", func(t *testing.T) {
		// An exact-cardinality query whose enumeration cannot finish in
		// 1ns and that has no feasible incumbent to fall back on.
		err := exec(t, open(t, paq.WithMethod(paq.MethodNaive), paq.WithTimeLimit(time.Nanosecond)), infeasibleQ, nil)
		if !errors.Is(err, paq.ErrBudget) {
			t.Errorf("err %v, want ErrBudget", err)
		}
	})
	t.Run("unsupported-naive", func(t *testing.T) {
		// The naive self-join needs an exact cardinality constraint.
		err := exec(t, open(t, paq.WithMethod(paq.MethodNaive)), `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT SUM(P.redshift) <= 2 MAXIMIZE SUM(P.r)`, nil)
		if !errors.Is(err, paq.ErrUnsupported) {
			t.Errorf("err %v, want ErrUnsupported", err)
		}
	})
	t.Run("parse-error-position", func(t *testing.T) {
		_, err := open(t).Prepare("SELECT PACKAGE(G) AS P\nFROM galaxy G BOGUS")
		var pe *paq.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("err %v, want *ParseError", err)
		}
		if pe.Line != 2 || pe.Col == 0 {
			t.Errorf("position %d:%d, want line 2 with a column", pe.Line, pe.Col)
		}
	})
	t.Run("compile-error-is-parse-error", func(t *testing.T) {
		_, err := open(t).Prepare(`SELECT PACKAGE(G) AS P FROM galaxy G
SUCH THAT COUNT(P.*) = 1 OR COUNT(P.*) = 2`)
		var pe *paq.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("err %v, want *ParseError for a translate-stage failure", err)
		}
	})
	t.Run("type-mismatch", func(t *testing.T) {
		sess, err := paq.Open(paq.Table(mealRelation()))
		if err != nil {
			t.Fatal(err)
		}
		_, err = sess.Prepare(`SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0
SUCH THAT COUNT(P.*) = 1 MINIMIZE SUM(P.name)`)
		if !errors.Is(err, paq.ErrTypeMismatch) {
			t.Errorf("err %v, want ErrTypeMismatch", err)
		}
		var pe *paq.ParseError
		if !errors.As(err, &pe) {
			t.Errorf("type mismatch in the query text should also be a *ParseError: %v", err)
		}
	})
}

// TestIncumbentStreamDirect is the acceptance test for anytime results:
// a DIRECT solve over the galaxy workload streams at least two
// improving incumbents (beyond the first) before returning the optimal
// package, each one a feasible package whose objective improves
// monotonically toward the final optimum.
func TestIncumbentStreamDirect(t *testing.T) {
	rel := workload.Galaxy(3000, 5)
	sess, err := paq.Open(paq.Table(rel), paq.WithMethod(paq.MethodDirect))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sess.Prepare(`SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 12 AND SUM(P.petrorad) <= 30 AND SUM(P.r) BETWEEN 150 AND 200
MINIMIZE SUM(P.redshift)`)
	if err != nil {
		t.Fatal(err)
	}
	var incs []paq.Incumbent
	res, err := stmt.Execute(context.Background(), paq.WithIncumbent(func(inc paq.Incumbent) {
		incs = append(incs, inc)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) < 3 {
		t.Fatalf("observed %d incumbents, want the first plus ≥ 2 improvements", len(incs))
	}
	for i := 1; i < len(incs); i++ {
		if incs[i].Objective >= incs[i-1].Objective {
			t.Errorf("incumbent %d objective %g does not improve on %g (minimization)",
				i, incs[i].Objective, incs[i-1].Objective)
		}
		if incs[i].Seq != i+1 {
			t.Errorf("incumbent %d has Seq %d", i, incs[i].Seq)
		}
	}
	last := incs[len(incs)-1]
	if diff := last.Objective - res.Objective; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("final incumbent objective %g != result objective %g", last.Objective, res.Objective)
	}
	if len(last.Rows) == 0 {
		t.Error("incumbents of a DIRECT solve must carry the package rows")
	}
	if res.Incumbents != len(incs) {
		t.Errorf("Result.Incumbents = %d, streamed %d", res.Incumbents, len(incs))
	}
	if got := sess.Incumbents(); got != uint64(len(incs)) {
		t.Errorf("session incumbent counter = %d, want %d", got, len(incs))
	}
}

// TestIncumbentStreamSketchRefine: the stream also works through the
// SketchRefine path (subproblem-tagged incumbents).
func TestIncumbentStreamSketchRefine(t *testing.T) {
	rel := workload.Galaxy(1500, 5)
	sess, err := paq.Open(paq.Table(rel), paq.WithMethod(paq.MethodSketchRefine))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sess.Prepare(`SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 6 AND SUM(P.redshift) <= 4.0 MAXIMIZE SUM(P.petrorad)`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	sawSketch := false
	res, err := stmt.Execute(context.Background(), paq.WithIncumbent(func(inc paq.Incumbent) {
		n++
		if inc.Sketch {
			sawSketch = true
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("SketchRefine solve streamed no incumbents")
	}
	if !sawSketch {
		t.Error("no sketch-phase incumbent observed")
	}
	if res.Incumbents != n {
		t.Errorf("Result.Incumbents = %d, streamed %d", res.Incumbents, n)
	}
}

// TestRowSubsetExecution: WithRows restricts both strategies to a
// sample, and the restricted answers stay feasible for the full spec.
func TestRowSubsetExecution(t *testing.T) {
	rel := workload.Galaxy(1200, 9)
	rows := make([]int, 0, 600)
	for i := 0; i < rel.Len(); i += 2 {
		rows = append(rows, i)
	}
	for _, m := range []paq.Method{paq.MethodDirect, paq.MethodSketchRefine} {
		sess, err := paq.Open(paq.Table(rel), paq.WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}
		stmt, err := sess.Prepare(`SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 5 AND SUM(P.redshift) <= 4.0 MAXIMIZE SUM(P.petrorad)`)
		if err != nil {
			t.Fatal(err)
		}
		res, err := stmt.Execute(context.Background(), paq.WithRows(rows))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		inSample := make(map[int]bool, len(rows))
		for _, r := range rows {
			inSample[r] = true
		}
		for _, r := range res.Rows {
			if !inSample[r] {
				t.Fatalf("%s: row %d outside the sample", m, r)
			}
		}
		if res.Cached {
			t.Errorf("%s: row-subset execution must bypass the cache", m)
		}
	}
}

// TestSessionClone: a clone shares the (expensive, immutable)
// partitioning but not the solution cache.
func TestSessionClone(t *testing.T) {
	rel := workload.Galaxy(1000, 3)
	sess, err := paq.Open(paq.Table(rel),
		paq.WithMethod(paq.MethodSketchRefine),
		paq.WithPartitionAttrs("ra", "dec", "redshift", "petrorad"),
		paq.WithWarmPartitioning())
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 4 AND SUM(P.redshift) <= 3.0 MAXIMIZE SUM(P.petrorad)`
	stmt, err := sess.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	clone, err := sess.Clone()
	if err != nil {
		t.Fatal(err)
	}
	cstmt, err := clone.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cstmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cres.Cached {
		t.Error("clone shared the solution cache")
	}
	if cres.Objective != res.Objective {
		t.Errorf("clone objective %g != original %g", cres.Objective, res.Objective)
	}
	pi, err := sess.Partitioning()
	if err != nil {
		t.Fatal(err)
	}
	cpi, err := clone.Partitioning()
	if err != nil {
		t.Fatal(err)
	}
	if pi.Groups != cpi.Groups || pi.BuildMS != cpi.BuildMS {
		t.Errorf("clone rebuilt the partitioning: %+v vs %+v", cpi, pi)
	}
}

// TestParseMethod pins the single source of method names.
func TestParseMethod(t *testing.T) {
	for in, want := range map[string]paq.Method{
		"":             paq.MethodAuto,
		"auto":         paq.MethodAuto,
		"direct":       paq.MethodDirect,
		"DIRECT":       paq.MethodDirect,
		"SketchRefine": paq.MethodSketchRefine,
		"naive":        paq.MethodNaive,
	} {
		got, err := paq.ParseMethod(in)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := paq.ParseMethod("cplex"); err == nil {
		t.Error("ParseMethod accepted an unknown method")
	}
}
