package paq_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/reltest"
	"repro/internal/workload"
	"repro/paq"
)

// abcRelation builds a small table with three numeric columns, so
// different queries demand different partitioning attribute sets.
func abcRelation(n int) *relation.Relation {
	rel := relation.New("t", reltest.Schema(
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
		relation.Column{Name: "c", Type: relation.Float},
	))
	for i := 0; i < n; i++ {
		reltest.Append(rel,
			relation.F(float64(i%17)), relation.F(float64(i%23)), relation.F(float64(i%11)))
	}
	return rel
}

const (
	abcQueryA = `SELECT PACKAGE(T) AS P FROM t T REPEAT 0
SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.a)`
	abcQueryB = `SELECT PACKAGE(T) AS P FROM t T REPEAT 0
SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.b)`
	abcQueryAB = `SELECT PACKAGE(T) AS P FROM t T REPEAT 0
SUCH THAT COUNT(P.*) = 2 AND SUM(P.a) >= 0 MAXIMIZE SUM(P.b)`
)

// TestCacheKeyMethodFlips pins the plan-cache-key contract under the
// adaptive planner: at a fixed dataset version, every method gets its
// own key (the advisor may flip methods between otherwise identical
// statements, and a flipped statement must never hit another method's
// cached solution), while re-planning the same method reproduces the
// same key.
func TestCacheKeyMethodFlips(t *testing.T) {
	rel := workload.Galaxy(400, 3)
	sess, err := paq.Open(paq.Table(rel))
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.r)`
	keyOf := func(opts ...paq.Option) string {
		t.Helper()
		stmt, err := sess.Prepare(q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.Plan().CacheKey
	}
	keys := map[paq.Method]string{
		paq.MethodDirect:       keyOf(paq.WithMethod(paq.MethodDirect)),
		paq.MethodNaive:        keyOf(paq.WithMethod(paq.MethodNaive)),
		paq.MethodSketchRefine: keyOf(paq.WithMethod(paq.MethodSketchRefine)),
	}
	for m1, k1 := range keys {
		for m2, k2 := range keys {
			if m1 != m2 && k1 == k2 {
				t.Errorf("methods %s and %s share cache key %s", m1, m2, k1)
			}
		}
	}
	// The key depends on the resolved method, not how it was resolved:
	// auto (which picks direct here) matches the fixed-direct key, and
	// re-planning reproduces keys exactly.
	if got := keyOf(); got != keys[paq.MethodDirect] {
		t.Errorf("auto-resolved direct key %s != fixed direct key %s", got, keys[paq.MethodDirect])
	}
	if got := keyOf(paq.WithMethod(paq.MethodSketchRefine)); got != keys[paq.MethodSketchRefine] {
		t.Errorf("sketchrefine key not stable across prepares: %s vs %s", got, keys[paq.MethodSketchRefine])
	}

	// Solution caches never leak across a method flip: executing direct
	// then sketchrefine gives each method its own miss (a stale hit
	// would return the other method's package).
	if _, err := must(sess.Prepare(q, paq.WithMethod(paq.MethodDirect))).Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := must(sess.Prepare(q, paq.WithMethod(paq.MethodSketchRefine))).Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	cs := sess.CacheStats()
	if cs[paq.MethodDirect].Misses != 1 || cs[paq.MethodDirect].Hits != 0 {
		t.Errorf("direct cache stats %+v, want exactly one miss", cs[paq.MethodDirect])
	}
	if cs[paq.MethodSketchRefine].Misses != 1 || cs[paq.MethodSketchRefine].Hits != 0 {
		t.Errorf("sketchrefine cache stats %+v, want exactly one miss (no cross-method hit)", cs[paq.MethodSketchRefine])
	}
}

func must(stmt *paq.Stmt, err error) *paq.Stmt {
	if err != nil {
		panic(err)
	}
	return stmt
}

// stubSolver is an injected strategy with a fixed latency; it always
// returns the first eligible row, so both methods agree on the
// objective and the advisor's gap gate stays neutral.
type stubSolver struct {
	name  string
	delay time.Duration
}

func (s stubSolver) Name() string { return s.name }
func (s stubSolver) Solve(ctx context.Context, spec *core.Spec) (*core.Package, *core.EvalStats, error) {
	time.Sleep(s.delay)
	rows := spec.BaseRows()
	return &core.Package{Rel: spec.Rel, Rows: rows[:1], Mult: []int{1}}, &core.EvalStats{}, nil
}

// TestAdvisorLearnsFasterMethod drives the full bandit loop: the fixed
// heuristic nominates sketchrefine (the input exceeds the single-ILP
// threshold), but the injected solvers make direct much faster — so
// after the cold phase (3 fallback runs) and the probe phase (3 runs of
// the alternative), the advisor flips the plan to direct.
func TestAdvisorLearnsFasterMethod(t *testing.T) {
	rel := workload.Galaxy(2500, 7)
	sess, err := paq.Open(paq.Table(rel))
	if err != nil {
		t.Fatal(err)
	}
	sess.SetSolver(paq.MethodDirect, stubSolver{name: "direct", delay: time.Millisecond})
	sess.SetSolver(paq.MethodSketchRefine, stubSolver{name: "sketchrefine", delay: 25 * time.Millisecond})
	q := `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.r)`

	run := func() *paq.Plan {
		t.Helper()
		stmt, err := sess.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stmt.Execute(context.Background()); err != nil {
			t.Fatal(err)
		}
		return stmt.Plan()
	}
	for i := 0; i < 3; i++ {
		p := run()
		if a := p.Adaptive; a == nil || !a.Cold || p.Method != paq.MethodSketchRefine {
			t.Fatalf("run %d: want cold sketchrefine (the heuristic), got method=%s adaptive=%+v", i, p.Method, p.Adaptive)
		}
	}
	for i := 0; i < 3; i++ {
		p := run()
		if a := p.Adaptive; a == nil || !a.Probe || p.Method != paq.MethodDirect {
			t.Fatalf("probe run %d: want direct probe, got method=%s adaptive=%+v", i, p.Method, p.Adaptive)
		}
	}
	stmt, err := sess.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	p := stmt.Plan()
	if p.Method != paq.MethodDirect {
		t.Fatalf("after warm-up the advisor still plans %s, want direct", p.Method)
	}
	a := p.Adaptive
	if a == nil || a.Cold || a.Probe {
		t.Fatalf("exploit decision marked cold/probe: %+v", a)
	}
	if !strings.Contains(p.Reason, "adaptive: observed") || !strings.Contains(a.Reason, "beats fallback") {
		t.Errorf("exploit reason %q / %q does not explain the flip", p.Reason, a.Reason)
	}
	if a.Fallback != paq.MethodSketchRefine {
		t.Errorf("fallback recorded as %s, want sketchrefine", a.Fallback)
	}
	if len(a.Scores) != 2 {
		t.Errorf("adaptive block carries %d scores, want evidence for both candidates", len(a.Scores))
	}
	st := sess.AdvisorStats()
	if !st.Enabled || st.Outcomes < 6 || st.ColdDecisions < 3 || st.Probes < 3 {
		t.Errorf("advisor stats %+v do not reflect the warm-up", st)
	}
}

// TestAdvisorEvictsColdWarmSets: two attribute sets go hot, the budget
// admits one — the maintenance pass adopts both, then evicts the least
// recently used, and WarmSets/AdvisorStats make the eviction visible.
func TestAdvisorEvictsColdWarmSets(t *testing.T) {
	sess, err := paq.Open(paq.Table(abcRelation(60)), paq.WithWarmSetBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sess.Prepare(abcQueryA, paq.WithMethod(paq.MethodSketchRefine)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := sess.Prepare(abcQueryB, paq.WithMethod(paq.MethodSketchRefine)); err != nil {
			t.Fatal(err)
		}
	}
	pass := sess.AdvisorMaintain()
	if len(pass.Prewarmed) != 2 {
		t.Fatalf("maintenance adopted %v, want both hot sets", pass.Prewarmed)
	}
	if len(pass.Evicted) != 1 || pass.Evicted[0] != "a" {
		t.Fatalf("evicted %v, want the LRU set [a]", pass.Evicted)
	}
	var keys []string
	for _, ws := range sess.WarmSets() {
		keys = append(keys, strings.Join(ws.Attrs, ","))
		if ws.Attrs[0] == "b" && (!ws.Prewarmed || ws.Uses != 3) {
			t.Errorf("surviving warm set %+v lost its advisor evidence", ws)
		}
	}
	if len(keys) != 1 || keys[0] != "b" {
		t.Errorf("warm sets after eviction: %v, want only [b]", keys)
	}
	if st := sess.AdvisorStats(); st.Evicted != 1 || st.Prewarmed != 2 {
		t.Errorf("advisor stats %+v, want prewarmed=2 evicted=1", st)
	}
	// The evicted set is not gone forever: demand rebuilds it lazily.
	stmt, err := sess.Prepare(abcQueryA, paq.WithMethod(paq.MethodSketchRefine))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAdvisorSharesSupersetPartitioning: a hot two-attribute set gets
// prewarmed; a later query over a covered single attribute is served by
// that superset partitioning instead of paying its own build.
func TestAdvisorSharesSupersetPartitioning(t *testing.T) {
	sess, err := paq.Open(paq.Table(abcRelation(60)))
	if err != nil {
		t.Fatal(err)
	}
	// Mine demand for {a,b} without building anything (small input: auto
	// plans direct).
	for i := 0; i < 3; i++ {
		stmt, err := sess.Prepare(abcQueryAB)
		if err != nil {
			t.Fatal(err)
		}
		if stmt.Method() != paq.MethodDirect {
			t.Fatalf("small auto query planned %s, want direct", stmt.Method())
		}
	}
	pass := sess.AdvisorMaintain()
	if len(pass.Prewarmed) != 1 || pass.Prewarmed[0] != "a,b" {
		t.Fatalf("maintenance prewarmed %v, want [a,b]", pass.Prewarmed)
	}
	stmt, err := sess.Prepare(abcQueryA, paq.WithMethod(paq.MethodSketchRefine))
	if err != nil {
		t.Fatal(err)
	}
	pi := stmt.Plan().Partitioning
	if pi == nil || strings.Join(pi.Attrs, ",") != "a,b" {
		t.Fatalf("plan partitioning %+v, want the warm [a b] superset", pi)
	}
	if !strings.Contains(stmt.Plan().Reason, "served by the warm partitioning") {
		t.Errorf("reason %q does not surface the sharing", stmt.Plan().Reason)
	}
	if _, err := stmt.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := sess.AdvisorStats()
	if st.SharedServes != 1 {
		t.Errorf("shared serves = %d, want 1", st.SharedServes)
	}
	if st.PartBuilds != 1 {
		t.Errorf("part builds = %d, want only the maintenance build", st.PartBuilds)
	}
}

// TestAdvisorStatePersists: a durable session's advisor evidence and
// warm sets survive Close/Open — the restarted session re-plans hot
// queries without a cold phase and without rebuilding partitionings.
func TestAdvisorStatePersists(t *testing.T) {
	dir := t.TempDir()
	rel := workload.Galaxy(2500, 7)
	q := `SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 2 MAXIMIZE SUM(P.r)`

	// WithoutCache: cache hits are not workload evidence (the advisor
	// skips them), and this test needs three real solves.
	sess, err := paq.Open(paq.Table(rel), paq.WithDurability(dir), paq.WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stmt, err := sess.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stmt.Execute(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got := sess.AdvisorStats().PartBuilds; got != 1 {
		t.Fatalf("first session paid %d builds, want 1", got)
	}
	pass := sess.AdvisorMaintain()
	if !pass.Persisted {
		t.Fatal("maintenance pass did not persist advisor state")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := paq.Open(nil, paq.WithDurability(dir), paq.WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.AdvisorStats()
	if st.Outcomes < 3 || st.SetsTracked < 1 {
		t.Fatalf("restored advisor stats %+v, want the first session's evidence", st)
	}
	var prewarmed int
	for _, ws := range re.WarmSets() {
		if ws.Prewarmed {
			prewarmed++
		}
	}
	if prewarmed == 0 {
		t.Fatal("no prewarmed warm set survived the restart")
	}
	// Re-planning the hot query needs no cold restart and no rebuild:
	// the partitioning warm-started from the snapshot and the advisor's
	// sample counts carried over (the next decision is the probe phase,
	// not the cold phase).
	stmt, err := re.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if a := stmt.Plan().Adaptive; a == nil || a.Cold {
		t.Errorf("restarted session re-plans cold: %+v", a)
	}
	if _, err := stmt.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := re.AdvisorStats().PartBuilds; got != 0 {
		t.Errorf("restarted session paid %d partitioning builds on the hot set, want 0", got)
	}
}

// TestWithoutAdvisor pins the opt-out: no Adaptive block, no mining, no
// outcome tracking — the session behaves exactly like the fixed
// heuristic (the bench harness's A/B twin relies on this).
func TestWithoutAdvisor(t *testing.T) {
	sess, err := paq.Open(paq.Table(mealRelation()), paq.WithoutAdvisor())
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sess.Prepare(mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Plan().Adaptive != nil {
		t.Error("WithoutAdvisor plan still carries an Adaptive block")
	}
	if _, err := stmt.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := sess.AdvisorStats()
	if st.Enabled || st.Outcomes != 0 || st.Decisions != 0 || st.SetsTracked != 0 {
		t.Errorf("disabled advisor accumulated state: %+v", st)
	}
	if pass := sess.AdvisorMaintain(); len(pass.Prewarmed)+len(pass.Shared)+len(pass.Evicted) != 0 || pass.Persisted {
		t.Errorf("disabled advisor's maintenance pass did work: %+v", pass)
	}
}
