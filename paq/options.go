package paq

import (
	"fmt"
	"time"

	"repro/internal/ilp"
	"repro/internal/sketchrefine"
)

// config is the resolved session configuration.
type config struct {
	method       Method
	partAttrs    []string
	tauFrac      float64
	tauAbs       int
	radius       float64
	workers      int
	racers       int
	seed         int64
	timeLimit    time.Duration
	maxNodes     int
	gap          float64
	noCache      bool
	cacheEntries int
	warm         bool
	durDir       string
	noAdvisor    bool
	warmBudget   int
}

func defaults() config {
	return config{
		method:     MethodAuto,
		tauFrac:    0.10,
		timeLimit:  60 * time.Second,
		maxNodes:   ilp.DefaultMaxNodes,
		gap:        1e-4,
		warmBudget: DefaultWarmSetBudget,
	}
}

// solverOptions maps the session budgets to the internal solver.
func (c config) solverOptions() ilp.Options {
	return ilp.Options{TimeLimit: c.timeLimit, MaxNodes: c.maxNodes, Gap: c.gap}
}

// sketchOptions is the SketchRefine configuration shared by the engine
// path and the bespoke (row-subset / reseeded) path.
func (s *Session) sketchOptions() sketchrefine.Options {
	return sketchrefine.Options{
		Solver:       s.cfg.solverOptions(),
		HybridSketch: true,
		Seed:         s.cfg.seed,
	}
}

// Option configures a Session at Open (and, for a restricted subset, a
// statement at Prepare).
type Option struct {
	apply func(*config) error
	// prepareOK marks options that are also legal per-statement.
	prepareOK bool
}

func opt(f func(*config) error) Option        { return Option{apply: f} }
func prepareOpt(f func(*config) error) Option { return Option{apply: f, prepareOK: true} }
func applyPrepare(cfg *config, opts []Option) error {
	for _, o := range opts {
		if !o.prepareOK {
			return fmt.Errorf("paq: option is only valid at Open, not Prepare")
		}
		if err := o.apply(cfg); err != nil {
			return err
		}
	}
	return nil
}

// WithMethod fixes the evaluation method instead of letting Prepare
// choose. Valid at Open (session default) and at Prepare (per
// statement).
func WithMethod(m Method) Option {
	return prepareOpt(func(c *config) error {
		if _, err := ParseMethod(string(m)); err != nil {
			return err
		}
		c.method = m
		return nil
	})
}

// WithPartitionAttrs fixes the partitioning attributes for every
// statement (they must be numeric columns). Without it, each statement
// partitions on its own query attributes — the paper's coverage-1
// setting — building (and caching) one partitioning per distinct
// attribute set.
func WithPartitionAttrs(attrs ...string) Option {
	return opt(func(c *config) error {
		if len(attrs) == 0 {
			return fmt.Errorf("paq: WithPartitionAttrs needs at least one attribute")
		}
		c.partAttrs = append([]string(nil), attrs...)
		return nil
	})
}

// WithTau sets the partition size threshold τ as a fraction of the
// relation (default 0.10, the paper's scalability setting).
func WithTau(frac float64) Option {
	return opt(func(c *config) error {
		if frac <= 0 || frac > 1 {
			return fmt.Errorf("paq: tau fraction %g out of (0, 1]", frac)
		}
		c.tauFrac = frac
		c.tauAbs = 0
		return nil
	})
}

// WithTauTuples sets τ as an absolute number of tuples per group,
// overriding WithTau.
func WithTauTuples(tau int) Option {
	return opt(func(c *config) error {
		if tau < 1 {
			return fmt.Errorf("paq: tau must be ≥ 1, got %d", tau)
		}
		c.tauAbs = tau
		return nil
	})
}

// WithRadiusLimit enforces the radius condition ω on every partitioning
// (Definition 2; see RadiusForEpsilon). Zero disables it (the default).
func WithRadiusLimit(omega float64) Option {
	return opt(func(c *config) error {
		c.radius = omega
		return nil
	})
}

// WithWorkers bounds the goroutines used for parallel partitioning and
// batch execution; 0 (the default) means GOMAXPROCS, 1 forces
// sequential execution. Results are identical for every setting.
func WithWorkers(n int) Option {
	return opt(func(c *config) error {
		c.workers = n
		return nil
	})
}

// WithRacers races that many SketchRefine refinement orders per query
// and keeps the first feasible package; 0 or 1 (the default) evaluates
// the single configured order deterministically.
func WithRacers(n int) Option {
	return opt(func(c *config) error {
		c.racers = n
		return nil
	})
}

// WithSeed steers SketchRefine's refinement order (Algorithm 2 starts
// from an arbitrary order). Zero (the default) keeps the deterministic
// ascending group order; equal seeds give equal orders.
func WithSeed(seed int64) Option {
	return opt(func(c *config) error {
		c.seed = seed
		return nil
	})
}

// WithTimeLimit bounds wall-clock time per ILP solve (and the naive
// baseline's enumeration). Default 60s.
func WithTimeLimit(d time.Duration) Option {
	return opt(func(c *config) error {
		if d < 0 {
			return fmt.Errorf("paq: negative time limit %v", d)
		}
		c.timeLimit = d
		return nil
	})
}

// DefaultNodeLimit is the branch-and-bound node budget per ILP solve
// when WithNodeLimit is not given — the stand-in for the paper's solver
// memory ceiling.
const DefaultNodeLimit = ilp.DefaultMaxNodes

// WithNodeLimit bounds the branch-and-bound nodes per ILP solve (see
// DefaultNodeLimit).
func WithNodeLimit(n int) Option {
	return opt(func(c *config) error {
		if n < 0 {
			return fmt.Errorf("paq: negative node limit %d", n)
		}
		c.maxNodes = n
		return nil
	})
}

// WithGap sets the relative optimality gap at which the solver stops
// (default 1e-4, CPLEX's default relative MIP gap).
func WithGap(g float64) Option {
	return opt(func(c *config) error {
		if g < 0 {
			return fmt.Errorf("paq: negative gap %g", g)
		}
		c.gap = g
		return nil
	})
}

// WithoutCache disables the per-strategy solution caches: every
// Execute solves afresh.
func WithoutCache() Option {
	return opt(func(c *config) error {
		c.noCache = true
		return nil
	})
}

// WithCacheEntries bounds each strategy's solution cache (0 keeps the
// default of 4096; negative means unbounded).
func WithCacheEntries(n int) Option {
	return opt(func(c *config) error {
		c.cacheEntries = n
		return nil
	})
}

// WithWarmPartitioning builds the session-wide partitioning eagerly at
// Open — what a long-lived service wants, paying the offline cost at
// registration instead of on the first query.
func WithWarmPartitioning() Option {
	return opt(func(c *config) error {
		c.warm = true
		return nil
	})
}

// WithoutAdvisor disables the session's adaptive planner: MethodAuto
// always follows the fixed heuristic, executions report no outcomes,
// and no attribute-set mining, pre-warming, or eviction happens. The
// seam for A/B comparisons (the bench harness's fixed-heuristic twin)
// and for callers that need byte-stable planning.
func WithoutAdvisor() Option {
	return opt(func(c *config) error {
		c.noAdvisor = true
		return nil
	})
}

// DefaultWarmSetBudget is how many advisor-managed warm partitionings a
// session keeps when WithWarmSetBudget is not given.
const DefaultWarmSetBudget = 8

// WithWarmSetBudget bounds the number of warm partitionings the
// advisor's maintenance pass keeps; least-recently-used sets beyond the
// budget are evicted (the session-wide partitioning is pinned and never
// counts). Negative means unbounded.
func WithWarmSetBudget(n int) Option {
	return opt(func(c *config) error {
		if n == 0 {
			return fmt.Errorf("paq: warm-set budget must be positive (or negative for unbounded)")
		}
		c.warmBudget = n
		return nil
	})
}

// WithDurability makes the session durable, persisting to dir: every
// mutation batch is written ahead to a checksummed WAL (group-commit
// fsynced, so a batch is durable before it is acknowledged), and
// Session.Snapshot / Session.Close fold the log into a compact
// snapshot that also serializes every warm partitioning and its
// maintenance state.
//
// When dir already holds durable state, Open recovers from it instead
// of loading the source: the latest snapshot is loaded, the WAL suffix
// replayed, and partitionings warm-start without repeating the offline
// quad-tree build. The source may then be nil. See docs/PERSISTENCE.md
// for the file formats and the recovery protocol.
func WithDurability(dir string) Option {
	return opt(func(c *config) error {
		if dir == "" {
			return fmt.Errorf("paq: WithDurability needs a directory")
		}
		c.durDir = dir
		return nil
	})
}
