package paq_test

import (
	"context"
	"fmt"
	"log"

	"repro/internal/relation"
	"repro/paq"
)

// ExampleSession_Prepare is the 10-line embedded lifecycle: open a
// session over an in-memory table, prepare a PaQL query, inspect the
// plan, and execute with incumbent streaming.
func ExampleSession_Prepare() {
	fruit := relation.New("Fruit", relation.NewSchema(
		relation.Column{Name: "name", Type: relation.String},
		relation.Column{Name: "kcal", Type: relation.Float},
		relation.Column{Name: "fiber", Type: relation.Float},
	))
	for _, f := range []struct {
		name        string
		kcal, fiber float64
	}{
		{"apple", 95, 4.4}, {"banana", 105, 3.1}, {"orange", 62, 3.1},
		{"pear", 101, 5.5}, {"kiwi", 42, 2.1}, {"mango", 201, 5.4},
	} {
		fruit.MustAppend(relation.S(f.name), relation.F(f.kcal), relation.F(f.fiber))
	}

	sess, err := paq.Open(paq.Table(fruit))
	if err != nil {
		log.Fatal(err)
	}
	stmt, err := sess.Prepare(`
SELECT PACKAGE(F) AS P FROM Fruit F REPEAT 0
SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) <= 250
MAXIMIZE SUM(P.fiber)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("method:", stmt.Plan().Method)

	res, err := stmt.Execute(context.Background(),
		paq.WithIncumbent(func(inc paq.Incumbent) {
			// Improving feasible packages stream here while the solver runs.
			_ = inc.Objective
		}))
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range res.Rows {
		fmt.Printf("%d× %s\n", res.Mult[i], fruit.Str(row, 0))
	}
	fmt.Printf("fiber: %.1f\n", res.Objective)
	// Output:
	// method: direct
	// 1× apple
	// 1× pear
	// 1× kiwi
	// fiber: 12.0
}
