package paq_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/relation"
	"repro/internal/reltest"
	"repro/paq"
)

// ExampleSession_Prepare is the 10-line embedded lifecycle: open a
// session over an in-memory table, prepare a PaQL query, inspect the
// plan, and execute with incumbent streaming.
func ExampleSession_Prepare() {
	fruit := relation.New("Fruit", reltest.Schema(
		relation.Column{Name: "name", Type: relation.String},
		relation.Column{Name: "kcal", Type: relation.Float},
		relation.Column{Name: "fiber", Type: relation.Float},
	))
	for _, f := range []struct {
		name        string
		kcal, fiber float64
	}{
		{"apple", 95, 4.4}, {"banana", 105, 3.1}, {"orange", 62, 3.1},
		{"pear", 101, 5.5}, {"kiwi", 42, 2.1}, {"mango", 201, 5.4},
	} {
		reltest.Append(fruit, relation.S(f.name), relation.F(f.kcal), relation.F(f.fiber))
	}

	sess, err := paq.Open(paq.Table(fruit))
	if err != nil {
		log.Fatal(err)
	}
	stmt, err := sess.Prepare(`
SELECT PACKAGE(F) AS P FROM Fruit F REPEAT 0
SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) <= 250
MAXIMIZE SUM(P.fiber)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("method:", stmt.Plan().Method)

	res, err := stmt.Execute(context.Background(),
		paq.WithIncumbent(func(inc paq.Incumbent) {
			// Improving feasible packages stream here while the solver runs.
			_ = inc.Objective
		}))
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range res.Rows {
		fmt.Printf("%d× %s\n", res.Mult[i], fruit.Str(row, 0))
	}
	fmt.Printf("fiber: %.1f\n", res.Objective)
	// Output:
	// method: direct
	// 1× apple
	// 1× pear
	// 1× kiwi
	// fiber: 12.0
}

// ExampleSession_InsertRows shows the live-dataset lifecycle: mutate
// the dataset through the session — the partitioning is maintained
// incrementally, stale cached solutions are invalidated, and the same
// prepared statement picks up the new rows on its next execution.
func ExampleSession_InsertRows() {
	stocks := relation.New("Stocks", reltest.Schema(
		relation.Column{Name: "ticker", Type: relation.String},
		relation.Column{Name: "price", Type: relation.Float},
		relation.Column{Name: "yield", Type: relation.Float},
	))
	for _, s := range []struct {
		ticker       string
		price, yield float64
	}{
		{"AAA", 40, 1.1}, {"BBB", 60, 2.0}, {"CCC", 55, 1.4},
		{"DDD", 30, 0.9}, {"EEE", 75, 2.2},
	} {
		reltest.Append(stocks, relation.S(s.ticker), relation.F(s.price), relation.F(s.yield))
	}

	sess, err := paq.Open(paq.Table(stocks))
	if err != nil {
		log.Fatal(err)
	}
	// Pick 2 stocks, spend at most 100, maximize total yield.
	stmt, err := sess.Prepare(`
SELECT PACKAGE(S) AS P FROM Stocks S REPEAT 0
SUCH THAT COUNT(P.*) = 2 AND SUM(P.price) <= 100
MAXIMIZE SUM(P.yield)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := stmt.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yield %.1f\n", res.Objective)

	// A new listing arrives: insert it and re-execute the SAME
	// statement — the dataset version moves, the stale cached solution
	// is bypassed, and the better package wins.
	if _, _, err := sess.InsertRows([][]relation.Value{
		{relation.S("FFF"), relation.F(45), relation.F(3.0)},
	}); err != nil {
		log.Fatal(err)
	}
	res, err = stmt.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yield %.1f after insert (version %d)\n", res.Objective, sess.Version())
	// Output:
	// yield 3.1
	// yield 4.4 after insert (version 6)
}

// ExampleSession_durability shows the persistent-session lifecycle:
// open with WithDurability, mutate (every batch is write-ahead logged
// before it is acknowledged), close — which snapshots — and reopen
// from the directory alone: the dataset, its version, and its warm
// partitionings all survive the restart.
func ExampleSession_durability() {
	dir, err := os.MkdirTemp("", "paq-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	meals := relation.New("Meals", reltest.Schema(
		relation.Column{Name: "name", Type: relation.String},
		relation.Column{Name: "kcal", Type: relation.Float},
		relation.Column{Name: "protein", Type: relation.Float},
	))
	for _, m := range []struct {
		name          string
		kcal, protein float64
	}{
		{"oats", 350, 12}, {"eggs", 210, 18}, {"salad", 120, 4},
		{"steak", 480, 42}, {"soup", 190, 9}, {"tofu", 160, 15},
	} {
		reltest.Append(meals, relation.S(m.name), relation.F(m.kcal), relation.F(m.protein))
	}

	sess, err := paq.Open(paq.Table(meals), paq.WithDurability(dir))
	if err != nil {
		log.Fatal(err)
	}
	// This insert is durable the moment it returns: it was fsynced to
	// the write-ahead log before being applied.
	if _, _, err := sess.InsertRows([][]relation.Value{
		{relation.S("lentils"), relation.F(230), relation.F(18)},
	}); err != nil {
		log.Fatal(err)
	}
	if err := sess.Close(); err != nil { // flush: final snapshot
		log.Fatal(err)
	}

	// A new process reopens the directory — no source needed: the
	// snapshot (and, after a crash, the WAL suffix) rebuilds the
	// session, partitionings warm-started rather than rebuilt.
	restored, err := paq.Open(nil, paq.WithDurability(dir))
	if err != nil {
		log.Fatal(err)
	}
	defer restored.Close()
	stmt, err := restored.Prepare(`
SELECT PACKAGE(M) AS P FROM Meals M REPEAT 0
SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) <= 700
MAXIMIZE SUM(P.protein)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := stmt.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows: %d, protein: %.0f, version: %d\n",
		restored.Rel().Live(), res.Objective, restored.Version())
	// Output:
	// rows: 7, protein: 51, version: 7
}
