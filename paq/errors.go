package paq

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/naive"
	"repro/internal/paql"
	"repro/internal/relation"
	"repro/internal/sketchrefine"
)

// The typed error taxonomy. Every failure mode of the internal solve
// path maps onto exactly one of these sentinels (or *ParseError), and
// the mapping preserves the original error chain: errors.Is also still
// matches the underlying cause (e.g. context.DeadlineExceeded under
// ErrTimeout).
var (
	// ErrInfeasible: no package satisfies the query — a definitive
	// verdict about the query, not a failure.
	ErrInfeasible = errors.New("paq: no package satisfies the query")
	// ErrTimeout: the evaluation deadline (context deadline) expired
	// before an answer was proven.
	ErrTimeout = errors.New("paq: evaluation deadline exceeded")
	// ErrBudget: a solver resource budget — branch-and-bound nodes, the
	// per-ILP time limit, the variable load limit, or the naive
	// baseline's enumeration budget — was exhausted. A retry with a
	// larger budget could succeed; the reproduction of the paper's
	// solver failures.
	ErrBudget = errors.New("paq: solver budget exhausted")
	// ErrTypeMismatch: the query applies an operation to a column of the
	// wrong type (e.g. summing a string column).
	ErrTypeMismatch = errors.New("paq: type mismatch")
	// ErrUnsupported: the chosen method cannot express the query (e.g.
	// the naive baseline without an exact cardinality constraint).
	ErrUnsupported = errors.New("paq: unsupported by the chosen method")
	// ErrIndeterminate: a durable session's write-ahead commit (fsync)
	// failed AFTER the mutation was applied in memory. The mutation is
	// visible to queries at the returned version, its record may already
	// be on disk, and a later snapshot persists the in-memory state — so
	// it may well survive a crash despite the error. Callers must not
	// blindly retry (a retry that succeeds duplicates the mutation);
	// they should consult Version/DurStats and treat the outcome as
	// unknown until the store heals. Mutations that fail BEFORE being
	// applied (validation, staging) are ordinary errors, not this one.
	ErrIndeterminate = errors.New("paq: durability indeterminate: mutation applied in memory, write-ahead commit failed")
)

// ErrFalseInfeasible marks a SketchRefine "no package found" verdict
// that Theorem 4 does not make definitive: the query is usually
// genuinely infeasible, but a DIRECT retry (or a different
// partitioning) could still find a package. errors.Is(err,
// ErrInfeasible) is also true for it, so callers that don't care about
// the distinction need only one check.
var ErrFalseInfeasible error = falseInfeasible{}

type falseInfeasible struct{}

// Error implements the error interface.
func (falseInfeasible) Error() string {
	return "paq: no package found (query infeasible, or false infeasibility)"
}

// Is makes ErrFalseInfeasible a subtype of ErrInfeasible for errors.Is.
func (falseInfeasible) Is(target error) bool { return target == ErrInfeasible }

// ParseError is a PaQL parse, validation, or compile failure — the
// query text (not the system) is at fault. Line and Col are 1-based
// positions into the query text; they are zero when the failure has no
// single source location (semantic validation and translation errors).
type ParseError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("paq: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return "paq: parse error: " + e.Msg
}

// taggedError attaches a taxonomy sentinel to an internal cause without
// changing the message: Error() reads like the internal error, while
// errors.Is/As reach both the sentinel and the full cause chain.
type taggedError struct {
	sentinel error
	cause    error
}

// Error implements the error interface, reading like the cause.
func (e *taggedError) Error() string { return e.cause.Error() }

// Unwrap exposes both the sentinel and the cause to errors.Is/As.
func (e *taggedError) Unwrap() []error { return []error{e.sentinel, e.cause} }

func tag(sentinel, cause error) error { return &taggedError{sentinel: sentinel, cause: cause} }

// mapEvalErr maps an internal evaluation failure onto the taxonomy.
func mapEvalErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, sketchrefine.ErrFalseInfeasible):
		return tag(ErrFalseInfeasible, err)
	case errors.Is(err, core.ErrInfeasible):
		return tag(ErrInfeasible, err)
	case errors.Is(err, context.DeadlineExceeded):
		return tag(ErrTimeout, err)
	case errors.Is(err, context.Canceled):
		return err
	case errors.Is(err, core.ErrResourceLimit), errors.Is(err, ilp.ErrTooLarge), errors.Is(err, naive.ErrTimeout):
		return tag(ErrBudget, err)
	case errors.Is(err, naive.ErrUnsupported):
		return tag(ErrUnsupported, err)
	case errors.Is(err, relation.ErrTypeMismatch):
		return tag(ErrTypeMismatch, err)
	default:
		return err
	}
}

// mapParseErr maps a paql.Parse failure to *ParseError.
func mapParseErr(err error) error {
	if err == nil {
		return nil
	}
	var pe *paql.Error
	if errors.As(err, &pe) {
		return &ParseError{Line: pe.Line, Col: pe.Col, Msg: pe.Msg}
	}
	// Semantic validation failures carry no position; strip the
	// internal prefix so the message reads naturally under ours.
	msg := strings.TrimPrefix(err.Error(), "paql: ")
	return &ParseError{Msg: msg}
}

// mapTranslateErr maps a translation failure: always a *ParseError
// (the query text is at fault), additionally tagged ErrTypeMismatch
// when the query applies an operation to a column of the wrong type.
func mapTranslateErr(err error) error {
	if err == nil {
		return nil
	}
	pe := &ParseError{Msg: strings.TrimPrefix(err.Error(), "translate: ")}
	if errors.Is(err, relation.ErrTypeMismatch) {
		return tag(ErrTypeMismatch, pe)
	}
	return pe
}
