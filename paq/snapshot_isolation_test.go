package paq_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/reltest"
	"repro/paq"
)

// versionImage is the serial twin of one dataset version: the live rows
// (in live order) with their cost and gain cells.
type versionImage struct {
	rows []int
	cost []float64
	gain []float64
}

func captureImage(s *paq.Session) versionImage {
	var img versionImage
	s.View(func(rel *relation.Relation) {
		rows := rel.AllRows()
		img.rows = append([]int(nil), rows...)
		img.cost = make([]float64, len(rows))
		img.gain = make([]float64, len(rows))
		for i, row := range rows {
			img.cost[i] = rel.Float(row, 0)
			img.gain[i] = rel.Float(row, 1)
		}
	})
	return img
}

// solveRecord is one concurrent solve's observation: the version it was
// pinned at and the package it returned.
type solveRecord struct {
	version uint64
	rows    []int
	size    int
	obj     float64
}

// runIsolationWorkload drives nSolves concurrent solves per worker
// against a session while the calling goroutine applies a randomized
// Insert/Delete/Update/Compact stream, recording a serial-twin image of
// every version the mutator creates. It returns the version history and
// every solve's observation.
func runIsolationWorkload(t *testing.T, sess *paq.Session, query string, ops int) (map[uint64]versionImage, []solveRecord) {
	t.Helper()
	history := map[uint64]versionImage{sess.Version(): captureImage(sess)}

	const workers, solvesPer = 3, 10
	recs := make([][]solveRecord, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stmt, err := sess.Prepare(query)
			if err != nil {
				t.Errorf("worker %d prepare: %v", g, err)
				return
			}
			for i := 0; i < solvesPer; i++ {
				res, err := stmt.Execute(context.Background())
				if err != nil {
					t.Errorf("worker %d solve %d: %v", g, i, err)
					return
				}
				recs[g] = append(recs[g], solveRecord{
					version: res.Version,
					rows:    res.Rows,
					size:    res.Size,
					obj:     res.Objective,
				})
			}
		}(g)
	}

	// The mutation stream runs on the test goroutine, racing the solves.
	// After each op the dataset is quiescent from the mutator's side, so
	// the captured image is exactly the new version's content.
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < ops; op++ {
		var live []int
		sess.View(func(rel *relation.Relation) { live = rel.AllRows() })
		switch k := rng.Float64(); {
		case op > 0 && op%20 == 0:
			// Compaction renumbers head; pinned solves must keep their
			// pre-compaction row sets (and partitionings must remap).
			if _, err := sess.Compact(); err != nil {
				t.Fatalf("op %d compact: %v", op, err)
			}
		case k < 0.4 || len(live) < 60:
			if _, _, err := sess.InsertRows([][]relation.Value{durRow(rng)}); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
		case k < 0.7:
			if _, err := sess.DeleteRows([]int{live[rng.Intn(len(live))]}); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
		default:
			if _, err := sess.UpdateRows([]int{live[rng.Intn(len(live))]}, [][]relation.Value{durRow(rng)}); err != nil {
				t.Fatalf("op %d update: %v", op, err)
			}
		}
		history[sess.Version()] = captureImage(sess)
	}
	wg.Wait()

	var all []solveRecord
	for _, rs := range recs {
		all = append(all, rs...)
	}
	return history, all
}

// checkAgainstTwin asserts one solve's package is consistent with the
// serial twin of the version it reports: every package row was live at
// that version, and the package satisfies the query's constraints and
// objective over that version's cell values. A solve that read head
// state from any other version (a torn read) fails here.
func checkAgainstTwin(t *testing.T, rec solveRecord, history map[uint64]versionImage) {
	t.Helper()
	img, ok := history[rec.version]
	if !ok {
		t.Errorf("solve reports version %d, which the mutator never produced (torn version)", rec.version)
		return
	}
	at := make(map[int]int, len(img.rows)) // row index → position
	for i, row := range img.rows {
		at[row] = i
	}
	if rec.size != 4 {
		t.Errorf("solve at v%d returned size %d, want 4", rec.version, rec.size)
		return
	}
	var cost, gain float64
	for _, row := range rec.rows {
		i, live := at[row]
		if !live {
			t.Errorf("solve at v%d packaged row %d, which was not live at that version", rec.version, row)
			return
		}
		cost += img.cost[i]
		gain += img.gain[i]
	}
	if cost > 25+1e-6 {
		t.Errorf("solve at v%d: package cost %.9f violates SUM(cost) <= 25 over that version's cells", rec.version, cost)
	}
	if math.Abs(gain-rec.obj) > 1e-6 {
		t.Errorf("solve at v%d: reported objective %.9f but that version's cells sum to %.9f", rec.version, rec.obj, gain)
	}
}

// twinObjective re-solves the query serially over a fresh relation
// holding exactly one version's content (same live order), with the
// same method — the ground truth a pinned DIRECT solve must match
// bit-for-bit.
func twinObjective(t *testing.T, img versionImage, query string) float64 {
	t.Helper()
	rel := relation.New("items", reltest.Schema(
		relation.Column{Name: "cost", Type: relation.Float},
		relation.Column{Name: "gain", Type: relation.Float},
	))
	for i := range img.rows {
		reltest.Append(rel, relation.F(img.cost[i]), relation.F(img.gain[i]))
	}
	twin, err := paq.Open(paq.Table(rel), paq.WithMethod(paq.MethodDirect), paq.WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := twin.Prepare(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Execute(context.Background())
	if err != nil {
		t.Fatalf("twin solve at a recorded version: %v", err)
	}
	return res.Objective
}

// TestSolveSnapshotIsolationDirect is the end-to-end MVCC property
// test: DIRECT solves race a randomized mutation stream (including
// compactions), and every solve must be answerable entirely from the
// version it pinned — same row set, same constraint arithmetic, and the
// exact objective a serial solve over that version produces.
func TestSolveSnapshotIsolationDirect(t *testing.T) {
	sess, err := paq.Open(paq.Table(durTable(t, 120, 7)),
		paq.WithMethod(paq.MethodDirect), paq.WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	history, recs := runIsolationWorkload(t, sess, durQuery, 80)
	if t.Failed() {
		return
	}
	twins := make(map[uint64]float64)
	for _, rec := range recs {
		checkAgainstTwin(t, rec, history)
		if t.Failed() {
			return
		}
		want, ok := twins[rec.version]
		if !ok {
			want = twinObjective(t, history[rec.version], durQuery)
			twins[rec.version] = want
		}
		// DIRECT is deterministic over a fixed row set: a pinned solve and
		// the serial twin see identical ILPs, so the optima are identical.
		if rec.obj != want {
			t.Errorf("solve at v%d: objective %v, serial twin %v", rec.version, rec.obj, want)
		}
	}
	t.Logf("verified %d concurrent solves across %d versions", len(recs), len(history))
}

// TestSolveSnapshotIsolationSketchRefine runs the same interleaving
// through SketchRefine, whose partitioning maintenance (splits, heals,
// compaction remaps) rides along with the mutation stream. SketchRefine
// is approximate, so there is no twin-objective identity; the isolation
// claims still hold exactly: every package is built from rows live at
// the pinned version and priced with that version's cells.
func TestSolveSnapshotIsolationSketchRefine(t *testing.T) {
	sess, err := paq.Open(paq.Table(durTable(t, 120, 9)), durOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	history, recs := runIsolationWorkload(t, sess, durQuery, 80)
	if t.Failed() {
		return
	}
	for _, rec := range recs {
		checkAgainstTwin(t, rec, history)
	}
	t.Logf("verified %d concurrent solves across %d versions", len(recs), len(history))
}
