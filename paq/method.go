package paq

import (
	"fmt"
	"strings"
)

// Method is an evaluation strategy for package queries.
type Method string

// The evaluation methods. This is the single source of method names in
// the repository: command-line flags, service requests, and benchmark
// configurations all resolve through ParseMethod.
const (
	// MethodAuto lets Prepare choose: DIRECT for base relations small
	// enough for a single ILP, SKETCHREFINE (over a lazily warmed
	// partitioning) beyond that. The chosen method and the reason are
	// reported in the statement's Plan.
	MethodAuto Method = "auto"
	// MethodDirect is the paper's DIRECT strategy (Section 3): translate
	// the whole query into one ILP and hand it to the solver.
	MethodDirect Method = "direct"
	// MethodSketchRefine is the paper's scalable strategy (Section 4):
	// sketch over group representatives, then refine group by group.
	MethodSketchRefine Method = "sketchrefine"
	// MethodNaive is the traditional-SQL self-join baseline (Section 2);
	// exponential in package cardinality, supported for completeness and
	// the Figure 1 reproduction.
	MethodNaive Method = "naive"
)

// ParseMethod resolves a method name (case-insensitive). The empty
// string means MethodAuto.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return MethodAuto, nil
	case "direct":
		return MethodDirect, nil
	case "sketchrefine":
		return MethodSketchRefine, nil
	case "naive":
		return MethodNaive, nil
	default:
		return "", fmt.Errorf("paq: unknown method %q (want auto, direct, sketchrefine, or naive)", s)
	}
}

// Methods lists the concrete evaluation methods (excluding MethodAuto,
// which is a selection policy, not a strategy).
func Methods() []Method {
	return []Method{MethodDirect, MethodNaive, MethodSketchRefine}
}
