package paq_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// forbiddenImports are the internal solve-path packages no consumer may
// reach around the SDK for. internal/relation (the data container) and
// internal/workload (synthetic data generators) are deliberately not on
// the list — they carry data, not evaluation.
var forbiddenImports = []string{
	"repro/internal/core",
	"repro/internal/engine",
	"repro/internal/ilp",
	"repro/internal/lp",
	"repro/internal/naive",
	"repro/internal/paql",
	"repro/internal/partition",
	"repro/internal/sketchrefine",
	"repro/internal/translate",
}

// TestConsumersImportOnlyPaq enforces the SDK boundary: every command,
// example, and the benchmark harness reaches the solve path exclusively
// through repro/paq. It parses the import list of every non-test Go
// file under cmd/, examples/, and internal/bench.
func TestConsumersImportOnlyPaq(t *testing.T) {
	forbidden := make(map[string]bool, len(forbiddenImports))
	for _, p := range forbiddenImports {
		forbidden[p] = true
	}
	for _, dir := range []string{"../cmd", "../examples", "../internal/bench"} {
		err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if forbidden[ipath] {
					t.Errorf("%s imports solve-path package %s directly; consume repro/paq instead", path, ipath)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
