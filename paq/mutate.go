package paq

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/relation"
)

// MaintStats counts the incremental partition-maintenance work a
// session has performed across all of its partitionings (see
// Session.MaintStats).
type MaintStats = partition.MaintStats

// Version returns the session's dataset version: a monotonically
// increasing counter bumped by every row mutation. Results, plans, and
// cache entries are keyed to the version they were computed at, so two
// equal versions bracket identical data.
func (s *Session) Version() uint64 {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	return s.rel.Version()
}

// InsertRows appends rows to the dataset and routes them into every
// warm partitioning incrementally (splitting any leaf pushed past τ) —
// no partitioning is rebuilt from scratch. The whole batch is validated
// against the schema before anything is applied, so a validation
// failure leaves the dataset unchanged. It returns the row indices
// assigned to the new rows (stable until the next Compact — use them
// with DeleteRows/UpdateRows) and the new dataset version.
//
// On a durable session (WithDurability) the batch is staged to the
// write-ahead log before it is applied and fsynced before it is
// acknowledged, so a returned nil error means the mutation survives a
// crash. The fsync happens after the dataset lock is released —
// concurrent mutations share group-commit fsync rounds and solves are
// never blocked behind a disk flush. If that fsync fails, the error is
// tagged ErrIndeterminate: the batch is already applied in memory (the
// returned version includes it) but its durability is unknown — do not
// blindly retry.
//
// Prepared statements stay valid across mutations: their next Execute
// sees the new data, and solution-cache entries for older versions stop
// matching (they are reclaimed, counted in CacheStats.Invalidations).
// Mutations and solves do not block each other: a solve pins an
// immutable relation snapshot and runs lock-free (so mutation methods
// may even be called from a WithIncumbent callback), while mutations
// take the narrow write lock only for the apply itself.
func (s *Session) InsertRows(rows [][]relation.Value) ([]int, uint64, error) {
	s.dataMu.Lock()
	if len(rows) == 0 {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return nil, v, nil
	}
	if err := s.validateInsert(rows); err != nil {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return nil, v, err
	}
	commit, err := s.stageLocked(func() (func() error, error) {
		return s.st.StageInsert(s.rel.Schema(), s.rel.Version(), rows)
	})
	if err != nil {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return nil, v, err
	}
	ids, err := s.applyInsert(rows)
	s.failStagedLocked(err)
	v := s.rel.Version()
	s.dataMu.Unlock()
	if err != nil {
		return nil, v, err
	}
	if err := commit(); err != nil {
		return ids, v, commitFailed(err)
	}
	return ids, v, nil
}

// commitFailed wraps a write-ahead commit (fsync) failure that happened
// after the mutation was applied in memory: the outcome is
// indeterminate (see ErrIndeterminate), not a clean refusal.
func commitFailed(err error) error {
	return tag(ErrIndeterminate, fmt.Errorf("paq: write-ahead log: %w", err))
}

// stageLocked stages a mutation record when the session is durable,
// returning a commit closure that is never nil (a no-op for in-memory
// sessions). Caller holds the write lock.
func (s *Session) stageLocked(stage func() (func() error, error)) (func() error, error) {
	if s.st == nil {
		return func() error { return nil }, nil
	}
	commit, err := stage()
	if err != nil {
		return nil, fmt.Errorf("paq: write-ahead log: %w", err)
	}
	return commit, nil
}

// failStagedLocked handles the (validation-unreachable) case of an
// apply failing after its record was staged: the WAL now holds a
// record memory never absorbed, so no later record could replay —
// poison until a snapshot re-roots the base. Caller holds the write
// lock.
func (s *Session) failStagedLocked(applyErr error) {
	if applyErr != nil && s.st != nil {
		s.st.Poison(applyErr)
	}
}

func (s *Session) validateInsert(rows [][]relation.Value) error {
	for i, vals := range rows {
		if err := s.rel.CheckRow(vals); err != nil {
			return fmt.Errorf("paq: insert row %d: %w", i, err)
		}
	}
	return nil
}

// applyInsert is the post-validation, post-logging half of InsertRows
// (shared with WAL replay). Caller holds the write lock.
func (s *Session) applyInsert(rows [][]relation.Value) ([]int, error) {
	ids := make([]int, len(rows))
	for i, vals := range rows {
		ids[i] = s.rel.Len()
		if err := s.rel.Append(vals...); err != nil {
			// Unreachable: every row was validated before.
			return nil, fmt.Errorf("paq: insert row %d: %w", i, err)
		}
	}
	if err := s.eachMaintainer(func(m *partition.Maintainer) error {
		return m.Insert(ids...)
	}); err != nil {
		return nil, err
	}
	s.invalidateStale()
	return ids, nil
}

// DeleteRows removes the given rows (by row index, as reported in
// Result.Rows) from the dataset. Row indices are stable between
// compactions — deleted rows are tombstoned, never renumbered — so a
// package computed earlier still names the surviving rows correctly
// until an explicit Compact reclaims the tombstones.
// The batch is validated first (every index in range, live, and
// distinct); a validation failure leaves the dataset unchanged, while
// on a durable session a write-ahead commit failure is tagged
// ErrIndeterminate (the delete is applied in memory; see InsertRows).
// It returns the new dataset version.
func (s *Session) DeleteRows(rows []int) (uint64, error) {
	s.dataMu.Lock()
	if len(rows) == 0 {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return v, nil
	}
	if err := s.validateDelete(rows); err != nil {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return v, err
	}
	commit, err := s.stageLocked(func() (func() error, error) {
		return s.st.StageDelete(s.rel.Version(), rows)
	})
	if err != nil {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return v, err
	}
	err = s.applyDelete(rows)
	s.failStagedLocked(err)
	v := s.rel.Version()
	s.dataMu.Unlock()
	if err != nil {
		return v, err
	}
	if err := commit(); err != nil {
		return v, commitFailed(err)
	}
	return v, nil
}

func (s *Session) validateDelete(rows []int) error {
	seen := make(map[int]bool, len(rows))
	for _, row := range rows {
		if row < 0 || row >= s.rel.Len() {
			return fmt.Errorf("paq: delete of row %d out of range [0, %d)", row, s.rel.Len())
		}
		if s.rel.Deleted(row) {
			return fmt.Errorf("paq: row %d is already deleted", row)
		}
		if seen[row] {
			return fmt.Errorf("paq: row %d deleted twice in one batch", row)
		}
		seen[row] = true
	}
	return nil
}

// applyDelete is the post-validation, post-logging half of DeleteRows
// (shared with WAL replay). Caller holds the write lock.
func (s *Session) applyDelete(rows []int) error {
	for _, row := range rows {
		if err := s.rel.Delete(row); err != nil {
			return err // unreachable: validated before
		}
	}
	if err := s.eachMaintainer(func(m *partition.Maintainer) error {
		return m.Delete(rows...)
	}); err != nil {
		return err
	}
	s.invalidateStale()
	return nil
}

// UpdateRows overwrites the given live rows in place (vals[i] replaces
// row rows[i]) and re-routes them through every warm partitioning —
// the rows keep their indices but may move to different leaf cells.
// The batch is validated first; a validation failure leaves the
// dataset unchanged, while on a durable session a write-ahead commit
// failure is tagged ErrIndeterminate (the update is applied in memory;
// see InsertRows). It returns the new dataset version.
func (s *Session) UpdateRows(rows []int, vals [][]relation.Value) (uint64, error) {
	s.dataMu.Lock()
	if len(rows) != len(vals) {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return v, fmt.Errorf("paq: update of %d rows with %d value tuples", len(rows), len(vals))
	}
	if len(rows) == 0 {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return v, nil
	}
	if err := s.validateUpdate(rows, vals); err != nil {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return v, err
	}
	commit, err := s.stageLocked(func() (func() error, error) {
		return s.st.StageUpdate(s.rel.Schema(), s.rel.Version(), rows, vals)
	})
	if err != nil {
		v := s.rel.Version()
		s.dataMu.Unlock()
		return v, err
	}
	err = s.applyUpdate(rows, vals)
	s.failStagedLocked(err)
	v := s.rel.Version()
	s.dataMu.Unlock()
	if err != nil {
		return v, err
	}
	if err := commit(); err != nil {
		return v, commitFailed(err)
	}
	return v, nil
}

func (s *Session) validateUpdate(rows []int, vals [][]relation.Value) error {
	seen := make(map[int]bool, len(rows))
	for i, row := range rows {
		if row < 0 || row >= s.rel.Len() || s.rel.Deleted(row) {
			return fmt.Errorf("paq: update of invalid row %d", row)
		}
		if seen[row] {
			return fmt.Errorf("paq: row %d updated twice in one batch", row)
		}
		seen[row] = true
		if err := s.rel.CheckRow(vals[i]); err != nil {
			return fmt.Errorf("paq: update row %d: %w", row, err)
		}
	}
	return nil
}

// applyUpdate is the post-validation, post-logging half of UpdateRows
// (shared with WAL replay). Caller holds the write lock.
func (s *Session) applyUpdate(rows []int, vals [][]relation.Value) error {
	for i, row := range rows {
		for c, v := range vals[i] {
			if err := s.rel.Set(row, c, v); err != nil {
				return err // unreachable: validated before
			}
		}
	}
	if err := s.eachMaintainer(func(m *partition.Maintainer) error {
		return m.Update(rows...)
	}); err != nil {
		return err
	}
	s.invalidateStale()
	return nil
}

// eachMaintainer applies one maintenance step to every built
// partitioning of every sibling session (clones with a different τ
// hold their own partitionings over the same relation — leaving those
// unmaintained would let them keep naming deleted rows), creating
// maintainers on first need. Siblings with matching shapes share
// lazyPart pointers, so the step is deduplicated by lazyPart. Caller
// holds the write lock, so no partitioning build is in flight.
func (s *Session) eachMaintainer(fn func(*partition.Maintainer) error) error {
	seen := make(map[*lazyPart]bool)
	var parts []*lazyPart
	for _, sib := range s.sibs.list() {
		sib.mu.Lock()
		for _, lp := range sib.parts {
			if !seen[lp] {
				seen[lp] = true
				parts = append(parts, lp)
			}
		}
		sib.mu.Unlock()
	}
	for _, lp := range parts {
		if lp.part == nil {
			continue // failed (or never-run) build; it will rebuild lazily
		}
		if lp.maint == nil {
			lp.maint = partition.NewMaintainer(lp.part, partition.MaintOptions{})
		}
		if err := fn(lp.maint); err != nil {
			return err
		}
	}
	return nil
}

// invalidateStale reclaims solution-cache entries solved against older
// dataset versions from every engine every sibling session has
// instantiated (the relation — and so the staleness — is shared).
func (s *Session) invalidateStale() {
	var engines []*engine.Engine
	for _, sib := range s.sibs.list() {
		sib.mu.Lock()
		for _, e := range sib.engines {
			engines = append(engines, e)
		}
		for _, e := range sib.overrides {
			engines = append(engines, e)
		}
		sib.mu.Unlock()
	}
	for _, e := range engines {
		e.InvalidateRel(s.rel)
	}
}

// View runs fn with the session's relation under the dataset read
// lock, so concurrent mutations cannot interleave with fn's reads —
// the consistency a serving layer needs when it materializes result
// tuples after a solve. fn must not mutate the dataset or call
// Execute/Prepare/mutation methods (the lock is not reentrant).
func (s *Session) View(fn func(rel *relation.Relation)) {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	fn(s.rel)
}

// MaintStats sums the partition-maintenance counters across every warm
// partitioning of the session (zero until the first mutation touches a
// built partitioning). Rebuilds staying at zero is the contract that
// ingestion never repartitions on the hot path.
func (s *Session) MaintStats() MaintStats {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	s.mu.Lock()
	parts := make([]*lazyPart, 0, len(s.parts))
	for _, lp := range s.parts {
		parts = append(parts, lp)
	}
	s.mu.Unlock()
	var agg MaintStats
	for _, lp := range parts {
		if lp.maint == nil {
			continue
		}
		st := lp.maint.Stats()
		agg.Inserts += st.Inserts
		agg.Deletes += st.Deletes
		agg.Updates += st.Updates
		agg.Splits += st.Splits
		agg.Merges += st.Merges
		agg.Heals += st.Heals
		agg.Rebuilds += st.Rebuilds
	}
	return agg
}

// QualityBound reports the worst multiplicative SketchRefine quality
// factor across the session's maintained partitionings (1 when nothing
// has drifted; see partition.Maintainer.QualityBound). maximize selects
// the sense of the queries being bounded.
func (s *Session) QualityBound(maximize bool) float64 {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	s.mu.Lock()
	parts := make([]*lazyPart, 0, len(s.parts))
	for _, lp := range s.parts {
		parts = append(parts, lp)
	}
	s.mu.Unlock()
	bound := 1.0
	for _, lp := range parts {
		if lp.maint == nil {
			continue
		}
		if b := lp.maint.QualityBound(maximize); b > bound {
			bound = b
		}
	}
	return bound
}
