package paq

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/relation"
)

// MaintStats counts the incremental partition-maintenance work a
// session has performed across all of its partitionings (see
// Session.MaintStats).
type MaintStats = partition.MaintStats

// Version returns the session's dataset version: a monotonically
// increasing counter bumped by every row mutation. Results, plans, and
// cache entries are keyed to the version they were computed at, so two
// equal versions bracket identical data.
func (s *Session) Version() uint64 {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	return s.rel.Version()
}

// InsertRows appends rows to the dataset and routes them into every
// warm partitioning incrementally (splitting any leaf pushed past τ) —
// no partitioning is rebuilt from scratch. The whole batch is validated
// against the schema before anything is applied, so a failed insert
// leaves the dataset unchanged. It returns the row indices assigned to
// the new rows (stable for the session's lifetime — use them with
// DeleteRows/UpdateRows) and the new dataset version.
//
// Prepared statements stay valid across mutations: their next Execute
// sees the new data, and solution-cache entries for older versions stop
// matching (they are reclaimed, counted in CacheStats.Invalidations).
// Do not call mutation methods from a WithIncumbent callback — the
// callback runs under the session's read lock and would deadlock.
func (s *Session) InsertRows(rows [][]relation.Value) ([]int, uint64, error) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	if len(rows) == 0 {
		return nil, s.rel.Version(), nil
	}
	for i, vals := range rows {
		if err := s.rel.CheckRow(vals); err != nil {
			return nil, s.rel.Version(), fmt.Errorf("paq: insert row %d: %w", i, err)
		}
	}
	ids := make([]int, len(rows))
	for i, vals := range rows {
		ids[i] = s.rel.Len()
		if err := s.rel.Append(vals...); err != nil {
			// Unreachable: every row was validated above.
			return nil, s.rel.Version(), fmt.Errorf("paq: insert row %d: %w", i, err)
		}
	}
	if err := s.eachMaintainer(func(m *partition.Maintainer) error {
		return m.Insert(ids...)
	}); err != nil {
		return nil, s.rel.Version(), err
	}
	s.invalidateStale()
	return ids, s.rel.Version(), nil
}

// DeleteRows removes the given rows (by row index, as reported in
// Result.Rows) from the dataset. Row indices are stable for the life of
// a session — deleted rows are tombstoned, never renumbered — so a
// package computed earlier still names the surviving rows correctly.
// The batch is validated first (every index in range, live, and
// distinct); a failed delete leaves the dataset unchanged. It returns
// the new dataset version.
func (s *Session) DeleteRows(rows []int) (uint64, error) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	if len(rows) == 0 {
		return s.rel.Version(), nil
	}
	seen := make(map[int]bool, len(rows))
	for _, row := range rows {
		if row < 0 || row >= s.rel.Len() {
			return s.rel.Version(), fmt.Errorf("paq: delete of row %d out of range [0, %d)", row, s.rel.Len())
		}
		if s.rel.Deleted(row) {
			return s.rel.Version(), fmt.Errorf("paq: row %d is already deleted", row)
		}
		if seen[row] {
			return s.rel.Version(), fmt.Errorf("paq: row %d deleted twice in one batch", row)
		}
		seen[row] = true
	}
	for _, row := range rows {
		if err := s.rel.Delete(row); err != nil {
			return s.rel.Version(), err // unreachable: validated above
		}
	}
	if err := s.eachMaintainer(func(m *partition.Maintainer) error {
		return m.Delete(rows...)
	}); err != nil {
		return s.rel.Version(), err
	}
	s.invalidateStale()
	return s.rel.Version(), nil
}

// UpdateRows overwrites the given live rows in place (vals[i] replaces
// row rows[i]) and re-routes them through every warm partitioning —
// the rows keep their indices but may move to different leaf cells.
// The batch is validated first; a failed update leaves the dataset
// unchanged. It returns the new dataset version.
func (s *Session) UpdateRows(rows []int, vals [][]relation.Value) (uint64, error) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	if len(rows) != len(vals) {
		return s.rel.Version(), fmt.Errorf("paq: update of %d rows with %d value tuples", len(rows), len(vals))
	}
	if len(rows) == 0 {
		return s.rel.Version(), nil
	}
	seen := make(map[int]bool, len(rows))
	for i, row := range rows {
		if row < 0 || row >= s.rel.Len() || s.rel.Deleted(row) {
			return s.rel.Version(), fmt.Errorf("paq: update of invalid row %d", row)
		}
		if seen[row] {
			return s.rel.Version(), fmt.Errorf("paq: row %d updated twice in one batch", row)
		}
		seen[row] = true
		if err := s.rel.CheckRow(vals[i]); err != nil {
			return s.rel.Version(), fmt.Errorf("paq: update row %d: %w", row, err)
		}
	}
	for i, row := range rows {
		for c, v := range vals[i] {
			if err := s.rel.Set(row, c, v); err != nil {
				return s.rel.Version(), err // unreachable: validated above
			}
		}
	}
	if err := s.eachMaintainer(func(m *partition.Maintainer) error {
		return m.Update(rows...)
	}); err != nil {
		return s.rel.Version(), err
	}
	s.invalidateStale()
	return s.rel.Version(), nil
}

// eachMaintainer applies one maintenance step to every built
// partitioning, creating maintainers on first need. Caller holds the
// write lock, so no partitioning build is in flight.
func (s *Session) eachMaintainer(fn func(*partition.Maintainer) error) error {
	s.mu.Lock()
	parts := make([]*lazyPart, 0, len(s.parts))
	for _, lp := range s.parts {
		parts = append(parts, lp)
	}
	s.mu.Unlock()
	for _, lp := range parts {
		if lp.part == nil {
			continue // failed (or never-run) build; it will rebuild lazily
		}
		if lp.maint == nil {
			lp.maint = partition.NewMaintainer(lp.part, partition.MaintOptions{})
		}
		if err := fn(lp.maint); err != nil {
			return err
		}
	}
	return nil
}

// invalidateStale reclaims solution-cache entries solved against older
// dataset versions from every engine the session has instantiated.
func (s *Session) invalidateStale() {
	s.mu.Lock()
	engines := make([]*engine.Engine, 0, len(s.engines)+len(s.overrides))
	for _, e := range s.engines {
		engines = append(engines, e)
	}
	for _, e := range s.overrides {
		engines = append(engines, e)
	}
	s.mu.Unlock()
	for _, e := range engines {
		e.InvalidateRel(s.rel)
	}
}

// View runs fn with the session's relation under the dataset read
// lock, so concurrent mutations cannot interleave with fn's reads —
// the consistency a serving layer needs when it materializes result
// tuples after a solve. fn must not mutate the dataset or call
// Execute/Prepare/mutation methods (the lock is not reentrant).
func (s *Session) View(fn func(rel *relation.Relation)) {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	fn(s.rel)
}

// MaintStats sums the partition-maintenance counters across every warm
// partitioning of the session (zero until the first mutation touches a
// built partitioning). Rebuilds staying at zero is the contract that
// ingestion never repartitions on the hot path.
func (s *Session) MaintStats() MaintStats {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	s.mu.Lock()
	parts := make([]*lazyPart, 0, len(s.parts))
	for _, lp := range s.parts {
		parts = append(parts, lp)
	}
	s.mu.Unlock()
	var agg MaintStats
	for _, lp := range parts {
		if lp.maint == nil {
			continue
		}
		st := lp.maint.Stats()
		agg.Inserts += st.Inserts
		agg.Deletes += st.Deletes
		agg.Updates += st.Updates
		agg.Splits += st.Splits
		agg.Merges += st.Merges
		agg.Heals += st.Heals
		agg.Rebuilds += st.Rebuilds
	}
	return agg
}

// QualityBound reports the worst multiplicative SketchRefine quality
// factor across the session's maintained partitionings (1 when nothing
// has drifted; see partition.Maintainer.QualityBound). maximize selects
// the sense of the queries being bounded.
func (s *Session) QualityBound(maximize bool) float64 {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	s.mu.Lock()
	parts := make([]*lazyPart, 0, len(s.parts))
	for _, lp := range s.parts {
		parts = append(parts, lp)
	}
	s.mu.Unlock()
	bound := 1.0
	for _, lp := range parts {
		if lp.maint == nil {
			continue
		}
		if b := lp.maint.QualityBound(maximize); b > bound {
			bound = b
		}
	}
	return bound
}
