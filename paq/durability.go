package paq

import (
	"fmt"
	"time"

	"repro/internal/partition"
	"repro/internal/store"
)

// ErrCorrupt is the typed error for durable state that fails
// verification at recovery (checksum mismatch, records out of version
// order, a snapshot that does not decode). It aliases the store
// package's sentinel so errors.Is works across layers.
var ErrCorrupt = store.ErrCorrupt

// DurStats is a snapshot of a durable session's persistence state (the
// serving layer surfaces it in /stats).
type DurStats struct {
	// Durable reports whether the session persists at all; every other
	// field is zero when it does not.
	Durable bool `json:"durable"`
	// Dir is the store directory.
	Dir string `json:"dir,omitempty"`
	// WALBytes is the current write-ahead log size — the bytes a crash
	// would replay. WALSyncedBytes is the durably fsynced prefix of it:
	// the replication watermark (a leader ships only synced bytes).
	WALBytes       int64 `json:"wal_bytes"`
	WALSyncedBytes int64 `json:"wal_synced_bytes"`
	// SnapshotVersion is the dataset version held by the latest
	// snapshot; SnapshotAge the time since it was written.
	SnapshotVersion uint64        `json:"snapshot_version"`
	SnapshotAge     time.Duration `json:"snapshot_age"`
	// Snapshots counts snapshots written by this session's process;
	// Compactions the tombstone-reclaiming compactions among them.
	Snapshots   uint64 `json:"snapshots"`
	Compactions uint64 `json:"compactions"`
	// ReplayedOps counts the row mutations replayed from the WAL when
	// this session recovered (0 when it started fresh).
	ReplayedOps uint64 `json:"replayed_ops"`
	// WarmPartitionings counts the partitionings warm-started from the
	// snapshot at recovery — each one is an offline quad-tree build the
	// restart did NOT pay.
	WarmPartitionings int `json:"warm_partitionings"`
	// WALAppends and WALSyncs instrument group commit: syncs < appends
	// under concurrent mutation load is the fsync batching at work.
	WALAppends uint64 `json:"wal_appends"`
	WALSyncs   uint64 `json:"wal_syncs"`
	// Poisoned reports that a compaction outran its snapshot (the write
	// failed): mutations are refused until a Snapshot succeeds and
	// re-roots the durable base. paqld's maintenance pass retries.
	Poisoned bool `json:"poisoned,omitempty"`
}

// DurStats reports the session's durability state (zero-valued, with
// Durable=false, for in-memory sessions).
func (s *Session) DurStats() DurStats {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	if s.st == nil {
		return DurStats{}
	}
	st := s.st.Stats()
	return DurStats{
		Durable:           true,
		Dir:               s.st.Dir(),
		WALBytes:          st.WALBytes,
		WALSyncedBytes:    st.WALSynced,
		SnapshotVersion:   st.SnapshotVersion,
		SnapshotAge:       st.SnapshotAge,
		Snapshots:         st.Snapshots,
		Compactions:       s.compactions,
		ReplayedOps:       st.ReplayedOps,
		WarmPartitionings: s.warmParts,
		WALAppends:        st.Appends,
		WALSyncs:          st.Syncs,
		Poisoned:          s.st.Poisoned(),
	}
}

// recover rebuilds the session's warm state from a boot snapshot and
// replays the WAL suffix. Called from Open before the session is
// shared, so no locking is needed.
func (s *Session) recover(boot *store.Snapshot) error {
	// Warm-start every serialized partitioning: reconstruct the group
	// structure and representatives without any quad-tree build, and
	// resume its incremental maintenance with the persisted counters.
	for _, ps := range boot.Parts {
		p, err := partition.FromGroups(s.rel, ps.Attrs, ps.Tau, ps.Omega, ps.Workers, ps.Groups)
		if err != nil {
			return fmt.Errorf("%w: restoring partitioning over %v: %v", ErrCorrupt, ps.Attrs, err)
		}
		m := partition.NewMaintainer(p, partition.MaintOptions{})
		m.RestoreStats(ps.Stats)
		lp := &lazyPart{part: p, maint: m}
		lp.once.Do(func() {}) // mark built: partitioningFor must not rebuild
		lp.built.Store(true)
		s.parts[partKey(ps.Attrs)] = lp
		s.warmParts++
	}
	// Replay the WAL suffix through the same apply path live mutations
	// use, so maintainers and caches see exactly what they saw before
	// the crash. Each record must line up with the version the dataset
	// has reached — a gap or overlap is corruption, not a tolerable
	// drift.
	err := s.st.Replay(s.rel.Schema(), func(rec *store.Record) error {
		if got := s.rel.Version(); rec.PreVersion != got {
			return fmt.Errorf("%w: WAL record expects dataset version %d, relation is at %d",
				ErrCorrupt, rec.PreVersion, got)
		}
		var err error
		switch rec.Kind {
		case store.KindInsert:
			if err = s.validateInsert(rec.Rows); err == nil {
				_, err = s.applyInsert(rec.Rows)
			}
		case store.KindDelete:
			if err = s.validateDelete(rec.Indices); err == nil {
				err = s.applyDelete(rec.Indices)
			}
		case store.KindUpdate:
			if err = s.validateUpdate(rec.Indices, rec.Rows); err == nil {
				err = s.applyUpdate(rec.Indices, rec.Rows)
			}
		}
		if err != nil {
			return fmt.Errorf("%w: replaying %s at version %d: %v", ErrCorrupt, rec.Kind, rec.PreVersion, err)
		}
		return nil
	})
	return err
}

// Snapshot persists a point-in-time image of the dataset: tombstones
// are compacted away (see Compact), the relation, its version, and
// every warm partitioning — with its maintenance counters — are
// serialized atomically, and the write-ahead log is truncated past the
// snapshot horizon. A later Open recovers from this image and replays
// only mutations that arrive after it.
//
// Snapshot blocks mutations and solves for its duration (it holds the
// dataset write lock). It is an error on a session without durability.
func (s *Session) Snapshot() error {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	return s.snapshotLocked()
}

func (s *Session) snapshotLocked() error {
	if s.st == nil {
		return fmt.Errorf("paq: session has no durability store (see WithDurability)")
	}
	// The advisor's evidence rides every flush as a best-effort sidecar
	// write — advisory state must never fail (or dirty) the snapshot.
	_ = s.saveAdvisorState()
	s.mu.Lock()
	partsDirty := s.partsDirty
	s.mu.Unlock()
	if s.rel.Len() == s.rel.Live() && !s.st.Dirty(s.rel.Version()) && !partsDirty {
		// Nothing to fold in: no tombstones to reclaim, no WAL records,
		// the latest snapshot already holds this exact version, and no
		// partitioning was built or evicted since. Skip the O(dataset)
		// rewrite — this is every read-only run's Close.
		return nil
	}
	compacted, err := s.compactLocked()
	if err != nil {
		if compacted > 0 {
			s.st.Poison(err)
		}
		return err
	}
	snap := &store.Snapshot{Version: s.rel.Version(), Rel: s.rel, Parts: s.partStates()}
	if err := s.st.WriteSnapshot(snap); err != nil {
		if compacted > 0 {
			// The in-memory state is compacted (rows renumbered, version
			// bumped with no WAL record) but the durable base is not: no
			// future mutation could be replayed correctly, so logging is
			// poisoned until a snapshot succeeds and re-roots the base.
			// Acknowledgements never outrun what recovery can rebuild.
			s.st.Poison(err)
		}
		return fmt.Errorf("paq: snapshot: %w", err)
	}
	s.mu.Lock()
	s.partsDirty = false
	s.mu.Unlock()
	return nil
}

// partStates serializes every built partitioning (caller holds the
// write lock, so no build or maintenance is in flight).
func (s *Session) partStates() []store.PartState {
	s.mu.Lock()
	parts := make([]*lazyPart, 0, len(s.parts))
	for _, lp := range s.parts {
		parts = append(parts, lp)
	}
	s.mu.Unlock()
	out := make([]store.PartState, 0, len(parts))
	for _, lp := range parts {
		if lp.part == nil {
			continue // failed or never-run build
		}
		ps := store.PartState{
			Attrs:   lp.part.Attrs,
			Tau:     lp.part.Tau,
			Omega:   lp.part.Omega,
			Workers: lp.part.Workers,
			Groups:  lp.part.Groups,
		}
		if lp.maint != nil {
			ps.Stats = lp.maint.Stats()
		}
		out = append(out, ps)
	}
	return out
}

// Compact physically reclaims tombstoned rows, remapping every warm
// partitioning's row indices through the compaction — the fix for
// unbounded tombstone growth under delete-heavy workloads. Row indices
// handed out before the compaction (package results, insert
// acknowledgements) are invalidated: the version bump reclaims stale
// cached solutions, but clients holding raw indices must refresh them.
// On a durable session the compaction is immediately made durable with
// a snapshot (the WAL's row indices predate the renumbering, so the
// snapshot is what persists it).
//
// It returns the number of physical rows reclaimed (0 when there were
// no tombstones — then nothing changes, not even the version).
func (s *Session) Compact() (int, error) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	reclaimed, err := s.compactLocked()
	if err != nil {
		if reclaimed > 0 && s.st != nil {
			s.st.Poison(err)
		}
		return reclaimed, err
	}
	if reclaimed > 0 && s.st != nil {
		if err := s.snapshotLocked(); err != nil {
			// Memory is compacted but the durable base is not (see
			// snapshotLocked): refuse mutations until a snapshot lands.
			s.st.Poison(err)
			return reclaimed, err
		}
	}
	return reclaimed, nil
}

func (s *Session) compactLocked() (int, error) {
	reclaimed := s.rel.Len() - s.rel.Live()
	remap := s.rel.Compact()
	if remap == nil {
		return 0, nil
	}
	// Remap every sibling session's partitionings, not just this one's:
	// a clone with a different τ holds its own partitioning over the
	// same (now renumbered) relation. Siblings with matching shapes
	// share lazyPart pointers, so dedup by partitioning — remapping one
	// twice would corrupt it.
	siblings := s.sibs.list()
	seen := make(map[*partition.Partitioning]bool)
	var parts []*partition.Partitioning
	for _, sib := range siblings {
		sib.mu.Lock()
		for _, lp := range sib.parts {
			if lp.part != nil && !seen[lp.part] {
				seen[lp.part] = true
				parts = append(parts, lp.part)
			}
		}
		sib.mu.Unlock()
	}
	for _, p := range parts {
		if err := p.Remap(remap); err != nil {
			return reclaimed, fmt.Errorf("paq: compact: %w", err)
		}
	}
	s.compactions++
	s.invalidateStale() // reaches every sibling's engines
	return reclaimed, nil
}

// ClosePreservingLayout closes a durable session without ever
// renumbering rows. A replica that applies a leader's log by physical
// row index must keep its layout — tombstones included — identical to
// the leader's, and the snapshot format only holds compacted
// relations. So: with no tombstones present this is exactly Close (the
// compaction inside the snapshot is a no-op); with tombstones the
// final snapshot is skipped and the session's own WAL remains the
// durable record — recovery replays it and rebuilds the tombstones in
// place. Nothing acknowledged is lost either way.
func (s *Session) ClosePreservingLayout() error {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	if s.st == nil || s.st.IsClosed() {
		return nil
	}
	var err error
	if s.rel.Len() == s.rel.Live() {
		err = s.snapshotLocked()
	}
	if cerr := s.st.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close flushes and closes a durable session: a final snapshot folds
// every acknowledged mutation into the on-disk image, then the store
// is closed. Because clones share the store, Close affects them too:
// reads and solves keep working everywhere, but further mutations on
// this session or any clone fail with a "closed WAL" error — never
// silently un-persisted. Close is idempotent; on an in-memory session
// it is a no-op.
func (s *Session) Close() error {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	if s.st == nil || s.st.IsClosed() {
		return nil
	}
	err := s.snapshotLocked()
	if cerr := s.st.Close(); err == nil {
		err = cerr
	}
	return err
}
