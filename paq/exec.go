package paq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sketchrefine"
)

// TraceNode is the JSON wire form of one span of an execution trace —
// what Result.Trace returns, paqld serves for "trace":true requests,
// and the slow-query log embeds. SDK consumers use this alias instead
// of importing the internal observability package.
type TraceNode = obs.Node

// Incumbent is one improving feasible solution streamed while a solve
// is still running — the unit of anytime results. For a DIRECT solve it
// is a feasible (possibly suboptimal) package over the input relation;
// SketchRefine streams the incumbents of its subproblems (tagged with
// Subproblem; Sketch marks solves over the representative relation,
// whose Rows — when present — index R̃ rather than the input).
type Incumbent struct {
	// Objective is the incumbent's objective value (for DIRECT: the
	// package objective, including any constant offset).
	Objective float64 `json:"objective"`
	// Rows and Mult are the incumbent package (nil for hybrid-sketch
	// incumbents, which span two domains).
	Rows []int `json:"rows,omitempty"`
	Mult []int `json:"mult,omitempty"`
	// Nodes is the branch-and-bound node count when the incumbent was
	// found; Elapsed the wall-clock time since Execute began.
	Nodes   int           `json:"nodes"`
	Elapsed time.Duration `json:"elapsed"`
	// Seq numbers the incumbents of this execution from 1.
	Seq int `json:"seq"`
	// Subproblem and Sketch locate the incumbent within a SketchRefine
	// evaluation (always 0/false for DIRECT).
	Subproblem int  `json:"subproblem,omitempty"`
	Sketch     bool `json:"sketch,omitempty"`
}

// Result is the outcome of one execution.
type Result struct {
	// Rows and Mult are the answer package: distinct input-relation rows
	// with multiplicities.
	Rows []int
	Mult []int
	// Objective is the package's objective value (0 for
	// feasibility-only queries).
	Objective float64
	// Size is the package cardinality (Σ multiplicities); Distinct the
	// number of distinct tuples.
	Size, Distinct int
	// Version is the relation version the solve was pinned at: the
	// whole execution — row set, constraints, objective — reflects
	// exactly the dataset as of this version, no matter what mutations
	// ran concurrently.
	Version uint64
	// Stats records the evaluation work (cache hits carry the original
	// solve's stats).
	Stats *Stats
	// Truncated reports a budget-limited incumbent: feasible, but
	// possibly suboptimal — rerunning with a larger budget could
	// improve it.
	Truncated bool
	// Cached reports the result was served from the session's solution
	// cache; Time is the wall-clock evaluation time (0 for cache hits).
	Cached bool
	Time   time.Duration
	// Incumbents counts the improving incumbents streamed during the
	// solve (0 for cache hits).
	Incumbents int
	// Err is set only by ExecuteBatch (Execute returns errors
	// directly); it carries the same typed taxonomy.
	Err error

	pkg   *core.Package
	spec  *core.Spec
	trace *obs.Span
}

// Trace snapshots the execution's span tree: where the solve spent its
// time, from snapshot pinning down to individual ILP subproblems. Nil
// unless the execution ran WithTrace.
func (r *Result) Trace() *TraceNode { return r.trace.Node() }

// Package returns the answer as a core package value (for
// materialization into a relation via Package().Materialize).
func (r *Result) Package() *Package { return r.pkg }

// execCfg is the per-execution configuration.
type execCfg struct {
	fn      func(Incumbent)
	rows    []int
	seed    int64
	seedSet bool
	trace   bool
}

// ExecOption configures one Execute call.
type ExecOption struct{ apply func(*execCfg) }

// WithIncumbent streams improving incumbents to fn as they are found,
// turning the solve into an anytime computation. fn runs synchronously
// on the solving goroutine (serialized even when refinement orders
// race): keep it cheap. Cache hits return immediately and stream
// nothing.
func WithIncumbent(fn func(Incumbent)) ExecOption {
	return ExecOption{apply: func(c *execCfg) { c.fn = fn }}
}

// WithRows restricts the evaluation to a subset of the relation's rows
// — the paper's protocol for derived smaller datasets. Row-subset
// executions bypass the solution cache and evaluate the single
// configured refinement order (WithRacers does not apply). Not
// supported by MethodNaive.
func WithRows(rows []int) ExecOption {
	return ExecOption{apply: func(c *execCfg) { c.rows = rows }}
}

// WithExecSeed overrides the session's SketchRefine refinement-order
// seed for this execution only. Reseeded executions bypass the
// solution cache (their answer depends on the order) and evaluate that
// single order deterministically (WithRacers does not apply).
func WithExecSeed(seed int64) ExecOption {
	return ExecOption{apply: func(c *execCfg) { c.seed = seed; c.seedSet = true }}
}

// WithTrace records a span tree for this execution — snapshot pin,
// partitioning view, sketch, per-group refines, ILP subproblems —
// retrievable from Result.Trace. Tracing costs a few allocations per
// span; executions without it pay nothing.
func WithTrace() ExecOption {
	return ExecOption{apply: func(c *execCfg) { c.trace = true }}
}

// Execute evaluates the prepared statement and returns the answer
// package. Failures map onto the typed taxonomy: errors.Is(err,
// ErrInfeasible) for "no such package", ErrTimeout for an expired ctx
// deadline, ErrBudget for exhausted solver budgets. Identical
// statements (same constraints, objective, and relation) are answered
// from the session's solution cache when possible.
func (st *Stmt) Execute(ctx context.Context, opts ...ExecOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var ec execCfg
	for _, o := range opts {
		o.apply(&ec)
	}
	t0 := time.Now()
	var root *obs.Span
	if ec.trace {
		root = obs.NewSpan("execute")
		root.SetAttrStr("method", string(st.method))
		ctx = obs.ContextWith(ctx, root)
		// Planning happens once, at Prepare; the trace replays its cost
		// so the tree shows the full query lifecycle. The replayed span
		// is marked: its time was not spent inside this execution.
		psp := root.Child("plan")
		psp.SetAttrBool("replayed", true)
		psp.SetAttrStr("reason", st.reason)
		psp.FinishIn(st.planDur)
	}

	// Pin the execution: a brief read lock captures an immutable
	// relation snapshot (and, for SketchRefine, a partitioning view at
	// the same version), then the solve runs lock-free against the
	// frozen state — a concurrent ingest stream proceeds on head and
	// never stalls behind this solve. Incumbent callbacks run outside
	// any session lock, so they may issue mutations.
	pinSp := root.Child("pin")
	pin, err := st.sess.pinExec(st, pinSp)
	pinSp.Finish()
	if err != nil {
		return nil, err
	}
	// Rebind the compiled spec to the snapshot (shallow copy: predicates
	// and coefficients bind by attribute name at evaluation time). The
	// solution cache keys on the relation's identity and version, so
	// snapshot-bound solves share entries with head-bound ones.
	spec := st.spec
	if pin.snap != st.spec.Rel {
		sc := *st.spec
		sc.Rel = pin.snap
		spec = &sc
	}

	// The incumbent hook: incumbents are always counted (Result and the
	// session's anytime counter) and forwarded to the caller when asked.
	// Racing refinement orders share the hook, so the whole callback —
	// sequencing and the user fn — runs under one mutex.
	var (
		hookMu sync.Mutex
		nInc   int
	)
	fn := ec.fn
	hook := func(inc core.Incumbent) {
		hookMu.Lock()
		defer hookMu.Unlock()
		nInc++
		st.sess.incumbents.Add(1)
		if fn != nil {
			fn(Incumbent{
				Objective:  inc.Objective,
				Rows:       inc.Rows,
				Mult:       inc.Mult,
				Nodes:      inc.Nodes,
				Elapsed:    time.Since(t0),
				Seq:        nInc,
				Subproblem: inc.Subproblem,
				Sketch:     inc.Sketch,
			})
		}
	}

	// Bespoke executions (row subsets, reseeds) bypass the engine and are
	// not representative workload evidence, so they skip the advisor.
	bespoke := ec.rows != nil || ec.seedSet
	solveSp := root.Child("solve")
	sctx := obs.ContextWith(ctx, solveSp)
	var res engine.Result
	if bespoke {
		res = st.executeBespoke(sctx, ec, spec, pin, hook)
	} else {
		eng := st.sess.engineFor(st.method, pin.part)
		res = eng.EvaluateStreamView(sctx, spec, pin.view, hook)
	}
	solveSp.SetAttrBool("cached", res.Cached)
	solveSp.Finish()
	if res.Err != nil {
		// A canceled caller says nothing about the method; everything else
		// is evidence (a definitive "no such package" is a correct answer,
		// timeouts and exhausted budgets are failures).
		if !bespoke && !errors.Is(res.Err, context.Canceled) {
			o := advisor.Outcome{
				Shape:   st.shape,
				Method:  string(st.method),
				SolveMS: float64(res.Time.Microseconds()) / 1000,
			}
			if errors.Is(mapEvalErr(res.Err), ErrInfeasible) {
				o.Infeasible = true
			} else {
				o.Failed = true
			}
			st.sess.reportOutcome(o)
		}
		return nil, mapEvalErr(res.Err)
	}
	// Copy the package slices: the underlying *core.Package may live in
	// the session's solution cache and be shared by every future cache
	// hit — a caller mutating its Result must not corrupt it.
	out := &Result{
		Rows:       append([]int(nil), res.Pkg.Rows...),
		Mult:       append([]int(nil), res.Pkg.Mult...),
		Size:       res.Pkg.Size(),
		Distinct:   res.Pkg.Distinct(),
		Version:    spec.Rel.Version(),
		Stats:      res.Stats,
		Truncated:  res.Stats != nil && res.Stats.Truncated,
		Cached:     res.Cached,
		Time:       res.Time,
		Incumbents: nInc,
		pkg:        res.Pkg,
		spec:       spec,
	}
	// Evaluate the objective against the pinned snapshot, not head: a
	// mutation racing this solve must not make the reported objective
	// disagree with the version the package was chosen at.
	objSp := root.Child("objective")
	obj, err := res.Pkg.ObjectiveValue(spec)
	objSp.Finish()
	if err != nil {
		return nil, mapEvalErr(err)
	}
	out.Objective = obj
	if root != nil {
		root.SetAttrBool("cached", res.Cached)
		root.SetAttrInt("version", int64(out.Version))
		root.SetAttrInt("incumbents", int64(nInc))
		root.Finish()
		out.trace = root
	}
	if !bespoke && !res.Cached {
		o := advisor.Outcome{
			Shape:     st.shape,
			Method:    string(st.method),
			SolveMS:   float64(res.Time.Microseconds()) / 1000,
			Truncated: out.Truncated,
		}
		if res.Stats != nil {
			o.Backtracks = res.Stats.Backtracks
		}
		if st.spec.Objective != nil {
			o.HasObjective = true
			o.Objective = obj
			o.Maximize = st.spec.Objective.Maximize
		}
		st.sess.reportOutcome(o)
	}
	return out, nil
}

// executeBespoke runs row-subset or reseeded executions outside the
// engine path (their answers are not cacheable under the statement's
// key). spec is the snapshot-bound spec and pin the pinned state, so
// bespoke solves are as lock-free as engine ones.
func (st *Stmt) executeBespoke(ctx context.Context, ec execCfg, spec *core.Spec, pin pinned, hook core.IncumbentFunc) engine.Result {
	t0 := time.Now()
	fail := func(err error) engine.Result {
		return engine.Result{Err: err, Time: time.Since(t0)}
	}
	switch st.method {
	case MethodNaive:
		return fail(fmt.Errorf("%w: naive evaluation over row subsets", ErrUnsupported))
	case MethodSketchRefine:
		part := pin.view
		if ec.rows != nil {
			part = part.Restrict(ec.rows)
		}
		opt := st.sess.sketchOptions()
		if ec.seedSet {
			opt.Seed = ec.seed
		}
		opt.OnIncumbent = hook
		pkg, stats, err := sketchrefine.EvaluateCtx(ctx, spec, part, opt)
		return engine.Result{Pkg: pkg, Stats: stats, Err: err, Time: time.Since(t0)}
	default: // direct
		rows := spec.BaseRows()
		if ec.rows != nil {
			rows = spec.FilterRows(ec.rows)
		}
		pkg, stats, err := core.SolveRowsStream(ctx, spec, rows, nil, st.sess.cfg.solverOptions(), 0, hook)
		return engine.Result{Pkg: pkg, Stats: stats, Err: err, Time: time.Since(t0)}
	}
}

// ExecuteBatch evaluates many prepared statements concurrently on the
// session's worker pool (WithWorkers), sharing the strategy state and
// solution caches, and returns the results in input order. Every slot
// is filled: per-statement failures are reported in Result.Err, not
// returned.
func (s *Session) ExecuteBatch(ctx context.Context, stmts []*Stmt, opts ...ExecOption) []*Result {
	out := make([]*Result, len(stmts))
	par.For(len(stmts), s.cfg.workers, func(i int) {
		r, err := stmts[i].Execute(ctx, opts...)
		if err != nil {
			r = &Result{Err: err}
		}
		out[i] = r
	})
	return out
}
