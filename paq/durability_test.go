package paq_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/reltest"
	"repro/paq"
)

func durTable(t *testing.T, n int, seed int64) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rel := relation.New("items", reltest.Schema(
		relation.Column{Name: "cost", Type: relation.Float},
		relation.Column{Name: "gain", Type: relation.Float},
	))
	for i := 0; i < n; i++ {
		reltest.Append(rel, relation.F(1+rng.Float64()*9), relation.F(1+rng.Float64()*9))
	}
	return rel
}

func durRow(rng *rand.Rand) []relation.Value {
	return []relation.Value{relation.F(1 + rng.Float64()*9), relation.F(1 + rng.Float64()*9)}
}

const durQuery = `
SELECT PACKAGE(I) AS P FROM items I REPEAT 0
SUCH THAT COUNT(P.*) = 4 AND SUM(P.cost) <= 25
MAXIMIZE SUM(P.gain)`

func durOpts(extra ...paq.Option) []paq.Option {
	return append([]paq.Option{
		paq.WithTauTuples(40),
		paq.WithMethod(paq.MethodSketchRefine),
		paq.WithWarmPartitioning(),
		paq.WithSeed(1),
		paq.WithoutCache(),
	}, extra...)
}

func solveObjective(t *testing.T, s *paq.Session) float64 {
	t.Helper()
	stmt, err := s.Prepare(durQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res.Objective
}

// applyStream drives an identical deterministic mutation stream into
// every given session.
func applyStream(t *testing.T, ops int, seed int64, sessions ...*paq.Session) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	live := sessions[0].Rel().AllRows()
	for op := 0; op < ops; op++ {
		switch k := rng.Float64(); {
		case k < 0.5 || len(live) < 20:
			row := durRow(rng)
			for _, s := range sessions {
				ids, _, err := s.InsertRows([][]relation.Value{row})
				if err != nil {
					t.Fatalf("op %d insert: %v", op, err)
				}
				live = live[:0:0]
				live = s.Rel().AllRows()
				_ = ids
			}
		case k < 0.8:
			victim := live[rng.Intn(len(live))]
			for _, s := range sessions {
				if _, err := s.DeleteRows([]int{victim}); err != nil {
					t.Fatalf("op %d delete %d: %v", op, victim, err)
				}
				live = s.Rel().AllRows()
			}
		default:
			victim := live[rng.Intn(len(live))]
			row := durRow(rng)
			for _, s := range sessions {
				if _, err := s.UpdateRows([]int{victim}, [][]relation.Value{row}); err != nil {
					t.Fatalf("op %d update %d: %v", op, victim, err)
				}
			}
		}
	}
}

func sessionsEqual(t *testing.T, a, b *paq.Session) {
	t.Helper()
	if av, bv := a.Version(), b.Version(); av != bv {
		t.Fatalf("versions diverge: %d vs %d", av, bv)
	}
	ra, rb := a.Rel(), b.Rel()
	if ra.Len() != rb.Len() || ra.Live() != rb.Live() {
		t.Fatalf("Len/Live diverge: %d/%d vs %d/%d", ra.Len(), ra.Live(), rb.Len(), rb.Live())
	}
	for r := 0; r < ra.Len(); r++ {
		if ra.Deleted(r) != rb.Deleted(r) {
			t.Fatalf("row %d tombstone diverges", r)
		}
		if ra.Deleted(r) {
			continue
		}
		for c := 0; c < ra.Schema().Len(); c++ {
			if !ra.Value(r, c).Equal(rb.Value(r, c)) {
				t.Fatalf("cell (%d,%d) diverges: %v vs %v", r, c, ra.Value(r, c), rb.Value(r, c))
			}
		}
	}
}

// TestDurabilityCrashRecovery is the SDK-level crash differential: a
// durable session and an in-memory twin absorb the same mutation
// stream; the durable one "crashes" (dropped without Close or
// Snapshot) and is recovered from disk. The recovered session must
// match the twin exactly on version and contents — zero acknowledged
// mutations lost — with its partitioning warm-started, and solve to an
// objective within the quality bound.
func TestDurabilityCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	base := durTable(t, 300, 1)
	twinBase := base.Subset("items", base.AllRows())

	dur, err := paq.Open(paq.Table(base), durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := paq.Open(paq.Table(twinBase), durOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, 150, 7, dur, twin)
	// Crash: no Close, no Snapshot. Everything after the baseline
	// snapshot lives only in the WAL.
	dur = nil

	rec, err := paq.Open(nil, durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	sessionsEqual(t, rec, twin)

	ds := rec.DurStats()
	if !ds.Durable {
		t.Fatal("recovered session reports not durable")
	}
	if ds.ReplayedOps == 0 {
		t.Fatal("recovery replayed zero ops; the crash lost the WAL")
	}
	if ds.WarmPartitionings == 0 {
		t.Fatal("no partitioning warm-started from the snapshot")
	}
	if rb := rec.MaintStats().Rebuilds; rb != 0 {
		t.Fatalf("warm-start performed %d full repartitions, want 0", rb)
	}
	// The recovered partitioning was loaded, not rebuilt: its recorded
	// offline build time is zero.
	pi, err := rec.Partitioning()
	if err != nil {
		t.Fatal(err)
	}
	if pi.BuildMS != 0 {
		t.Fatalf("recovered partitioning reports a %gms offline build — it was rebuilt, not warm-started", pi.BuildMS)
	}

	objRec, objTwin := solveObjective(t, rec), solveObjective(t, twin)
	bound := rec.QualityBound(true)
	if tb := twin.QualityBound(true); tb > bound {
		bound = tb
	}
	lo, hi := objRec, objTwin
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo <= 0 || hi/lo > bound {
		t.Fatalf("objectives diverge beyond quality bound %g: recovered %g vs twin %g", bound, objRec, objTwin)
	}

	// The recovered session keeps absorbing mutations durably.
	applyStream(t, 20, 9, rec, twin)
	sessionsEqual(t, rec, twin)
}

// TestDurabilityCloseFlushes verifies the drain path: Close writes a
// final snapshot, so a reopen replays nothing and loses nothing.
func TestDurabilityCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	s, err := paq.Open(paq.Table(durTable(t, 100, 2)), durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, 40, 3, s)
	wantVersion := s.Version()
	if s.Rel().Len() != s.Rel().Live() {
		// Close compacts tombstones away, which is itself one mutation.
		wantVersion++
	}
	wantLive := s.Rel().Live()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := paq.Open(nil, durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.Version(); got != wantVersion {
		t.Fatalf("version after close+reopen = %d, want %d", got, wantVersion)
	}
	if got := rec.Rel().Live(); got != wantLive {
		t.Fatalf("live rows = %d, want %d", got, wantLive)
	}
	if ds := rec.DurStats(); ds.ReplayedOps != 0 {
		t.Fatalf("clean close still left %d ops in the WAL", ds.ReplayedOps)
	}
	// Close compacts: the snapshot image carries no tombstones.
	if rec.Rel().Len() != rec.Rel().Live() {
		t.Fatalf("reopened relation has %d tombstones", rec.Rel().Len()-rec.Rel().Live())
	}
}

// TestSessionCompactReclaims exercises the tombstone fix end to end:
// heavy deletes, then Compact shrinks the resident row count and the
// session keeps solving and mutating correctly.
func TestSessionCompactReclaims(t *testing.T) {
	s, err := paq.Open(paq.Table(durTable(t, 400, 4)), durOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	objBefore := solveObjective(t, s)
	rows := s.Rel().AllRows()
	if _, err := s.DeleteRows(rows[200:]); err != nil {
		t.Fatal(err)
	}
	if got := s.Rel().Len(); got != 400 {
		t.Fatalf("Len = %d before compact, want 400", got)
	}
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 200 {
		t.Fatalf("reclaimed %d rows, want 200", reclaimed)
	}
	if got := s.Rel().Len(); got != 200 {
		t.Fatalf("Len = %d after compact, want 200 (memory not reclaimed)", got)
	}
	// Second compact is a no-op.
	if reclaimed, err = s.Compact(); err != nil || reclaimed != 0 {
		t.Fatalf("second Compact = (%d, %v), want (0, nil)", reclaimed, err)
	}
	// The session still solves (over fewer rows) and mutates.
	_ = objBefore
	_ = solveObjective(t, s)
	applyStream(t, 20, 5, s)
	if got := s.MaintStats().Rebuilds; got != 0 {
		t.Fatalf("compaction triggered %d repartitions, want 0", got)
	}
}

// TestDurabilityCorruptWALDetected flips a byte in a committed WAL
// record: recovery must fail with the typed paq.ErrCorrupt, not panic
// and not silently drop data.
func TestDurabilityCorruptWALDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := paq.Open(paq.Table(durTable(t, 50, 6)), durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, 10, 8, s)
	// Crash without Close, then corrupt the middle of the WAL.
	walPath := filepath.Join(dir, "wal.paqlog")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 40 {
		t.Fatalf("WAL unexpectedly small: %d bytes", len(data))
	}
	data[20] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := paq.Open(nil, durOpts(paq.WithDurability(dir))...); !errors.Is(err, paq.ErrCorrupt) {
		t.Fatalf("Open over corrupt WAL = %v, want ErrCorrupt", err)
	}
}

// TestOpenNilSourceWithoutState keeps the nil-source contract: without
// durable state to recover, Open must fail cleanly.
func TestOpenNilSourceWithoutState(t *testing.T) {
	if _, err := paq.Open(nil, paq.WithDurability(t.TempDir())); err == nil {
		t.Fatal("Open(nil) over an empty store succeeded")
	}
	if _, err := paq.Open(nil); err == nil {
		t.Fatal("Open(nil) succeeded")
	}
}

// TestPoisonedAfterFailedSnapshot: a compaction whose snapshot cannot
// be written leaves memory diverged from the durable base, so the
// session must refuse further mutations (never acknowledge what
// recovery could not rebuild) until a snapshot succeeds and re-roots
// the base.
func TestPoisonedAfterFailedSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := paq.Open(paq.Table(durTable(t, 120, 11)), durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.DeleteRows(s.Rel().AllRows()[:30]); err != nil {
		t.Fatal(err)
	}
	// Block the snapshot temp file with a directory (works even as
	// root, where chmod-based read-only dirs don't).
	block := filepath.Join(dir, "snapshot.paqsnap.tmp")
	if err := os.Mkdir(block, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err == nil {
		t.Fatal("Compact succeeded with an unwritable snapshot")
	}
	if !s.DurStats().Poisoned {
		t.Fatal("session not poisoned after compaction outran its snapshot")
	}
	rng := rand.New(rand.NewSource(1))
	if _, _, err := s.InsertRows([][]relation.Value{durRow(rng)}); err == nil {
		t.Fatal("poisoned session acknowledged a mutation it could not recover")
	}
	// Unblock: a successful snapshot re-roots the base and lifts the
	// refusal.
	if err := os.Remove(block); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if s.DurStats().Poisoned {
		t.Fatal("still poisoned after a successful snapshot")
	}
	if _, _, err := s.InsertRows([][]relation.Value{durRow(rng)}); err != nil {
		t.Fatalf("mutation after recovery snapshot: %v", err)
	}
	wantLive := s.Rel().Live()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := paq.Open(nil, durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.Rel().Live(); got != wantLive {
		t.Fatalf("recovered %d live rows, want %d", got, wantLive)
	}
}

// TestCloseAffectsClones: clones share the store, so Close anywhere
// stops persistence everywhere — mutations fail loudly instead of
// going silently un-persisted, reads keep working, and Close is
// idempotent.
func TestCloseAffectsClones(t *testing.T) {
	dir := t.TempDir()
	s, err := paq.Open(paq.Table(durTable(t, 60, 12)), durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.Close(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, _, err := s.InsertRows([][]relation.Value{durRow(rng)}); err == nil {
		t.Fatal("mutation on the sibling of a closed session was acknowledged but cannot persist")
	}
	_ = solveObjective(t, s) // reads and solves still work
	if err := s.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
}

// TestEmptyRecoveredStateRejected: a store whose last snapshot holds
// zero rows reopens to nothing a query could run against; Open must
// reject it like it rejects an empty source.
func TestEmptyRecoveredStateRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := paq.Open(paq.Table(durTable(t, 20, 13)), durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteRows(s.Rel().AllRows()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := paq.Open(nil, durOpts(paq.WithDurability(dir))...); err == nil {
		t.Fatal("Open accepted a recovered empty relation")
	}
}

// TestCompactRemapsClonePartitionings: a clone with a different τ
// holds its own partitioning over the shared relation; mutations must
// maintain it and Compact must remap it (and must not double-remap the
// partitionings shared with same-shape clones).
func TestCompactRemapsClonePartitionings(t *testing.T) {
	s, err := paq.Open(paq.Table(durTable(t, 400, 14)), durOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	// Different τ ⇒ private partitioning; same options ⇒ shared one.
	private, err := s.Clone(paq.WithTauTuples(25))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	objP := solveObjective(t, private) // builds the clone's partitioning
	objS := solveObjective(t, shared)

	rows := s.Rel().AllRows()
	if _, err := s.DeleteRows(rows[100:300]); err != nil {
		t.Fatal(err)
	}
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 200 {
		t.Fatalf("reclaimed %d rows, want 200", reclaimed)
	}
	// Every sibling keeps solving over the renumbered relation; a stale
	// (un-remapped) partitioning would index out of range or pick
	// deleted tuples.
	for _, sess := range []*paq.Session{s, private, shared} {
		_ = solveObjective(t, sess)
	}
	// And mutations keep maintaining all of them.
	applyStream(t, 30, 15, s)
	for _, sess := range []*paq.Session{s, private, shared} {
		_ = solveObjective(t, sess)
	}
	_, _ = objP, objS
}

// TestConcurrentMutationsGroupCommit hammers one durable session from
// many goroutines while snapshots run concurrently: every acknowledged
// insert must survive a crash-reopen, commits staged before a snapshot
// truncation must still be acknowledged (superseded, not lost), and
// the WAL counters must stay coherent.
func TestConcurrentMutationsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := paq.Open(paq.Table(durTable(t, 100, 16)), durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 12
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < each; i++ {
				if _, _, err := s.InsertRows([][]relation.Value{durRow(rng)}); err != nil {
					t.Errorf("writer %d insert %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	// Concurrent snapshots truncate the WAL under the writers' feet;
	// pending commits must be superseded cleanly, never deadlock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Snapshot(); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	d := s.DurStats()
	if d.WALSyncs > d.WALAppends {
		t.Errorf("syncs %d > appends %d", d.WALSyncs, d.WALAppends)
	}
	want := 100 + writers*each
	// Crash (no Close) and recover: zero acknowledged-insert loss.
	s = nil
	rec, err := paq.Open(nil, durOpts(paq.WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.Rel().Live(); got != want {
		t.Fatalf("recovered %d live rows, want %d (acknowledged inserts lost)", got, want)
	}
}
