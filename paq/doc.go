// Package paq is the embeddable SDK for package queries — the stable,
// public entry point to this reproduction of "Scalable Package Queries
// in Relational Database Systems" (Brucato et al., PVLDB 2016).
//
// A package query selects a *set* of tuples (a "package") that
// collectively satisfy global constraints and optimize a global
// objective; PaQL is its declarative SQL-like surface language (see
// docs/PAQL.md for the full language reference). This package wraps the
// whole pipeline — parse → ILP translation → strategy selection →
// solve — behind an explicit prepare/plan/execute lifecycle:
//
//	sess, err := paq.Open(paq.CSV("recipes.csv"))
//	stmt, err := sess.Prepare(`SELECT PACKAGE(R) AS P FROM recipes R ...`)
//	fmt.Println(stmt.Plan())                    // EXPLAIN: method, why, ILP size
//	res, err := stmt.Execute(ctx,
//	    paq.WithIncumbent(func(inc paq.Incumbent) { ... })) // anytime results
//
// # Sessions, statements, plans
//
// A Session owns one input relation, lazily warmed offline
// partitionings (one per distinct attribute set), and per-strategy
// solution caches. A Stmt is a compiled query with a typed Plan — the
// chosen evaluation method and why, the partitioning shape, and the ILP
// size — so EXPLAIN is a first-class operation. Execute streams
// improving incumbents of the underlying branch-and-bound solve to an
// optional callback, turning every solve into an anytime computation.
//
// # Live datasets
//
// Sessions are not frozen snapshots: InsertRows, DeleteRows, and
// UpdateRows mutate the dataset in place under a monotonically
// increasing version (Session.Version). Mutations maintain every warm
// partitioning incrementally — new rows are routed to the nearest leaf
// cell, overfull cells split, underfull cells merge into their nearest
// sibling — instead of repartitioning from scratch, and solution-cache
// entries computed against older versions stop matching and are
// reclaimed (CacheStats.Invalidations). Prepared statements stay valid:
// their next Execute sees the new data. SketchRefine's approximation
// guarantees degrade gracefully under maintenance: the session tracks a
// sound upper bound on every group radius and exposes the resulting
// factor via Session.QualityBound; see ExampleSession_InsertRows.
//
// # Durability
//
// Sessions are in-memory by default; WithDurability(dir) makes one
// persistent. Every mutation batch is appended to a checksummed
// write-ahead log — with group-commit fsync batching — before it is
// applied, so an acknowledged mutation survives a crash;
// Session.Snapshot (and Session.Close) folds the log into a compact
// snapshot that also serializes every warm partitioning and its
// maintenance state, reclaiming tombstoned rows via Session.Compact
// along the way. Reopening the directory recovers the dataset —
// snapshot plus WAL replay — with partitionings warm-started instead of
// rebuilt, so a restarted service skips the offline quad-tree cost
// SketchRefine amortizes. See Session.DurStats,
// ExampleSession_durability, and docs/PERSISTENCE.md for formats and
// the recovery protocol.
//
// # Errors
//
// Failures are reported through a typed error taxonomy — ErrInfeasible,
// ErrTimeout, ErrBudget, ErrTypeMismatch, ErrUnsupported, and
// *ParseError — with full errors.Is/As support; see errors.go.
//
// Every consumer in this repository (paqlcli, paqld, the benchmark
// harness, and all examples) builds on this package alone.
package paq
