package paq_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/store"
	"repro/paq"
)

// TestWALReplayIdempotence is the replay-idempotence property behind
// both crash recovery and WAL-shipping replication: replaying any
// prefix of the log twice must land in exactly the state of replaying
// it once. The PreVersion carried by every record is what makes this
// hold — a record below the recovered version is already folded in and
// must be skipped, never re-applied. Three phases pin it down:
//
//  1. Two recoveries of the same WAL (no snapshot between) replay the
//     same records and agree exactly.
//  2. A WAL full of pre-snapshot records — rewritten wholesale under a
//     newer snapshot, the worst case of the snapshot-rename/WAL-
//     truncate crash window — replays zero ops and changes nothing.
//  3. Fresh records appended after that stale prefix replay exactly
//     once while the prefix still skips.
func TestWALReplayIdempotence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			opts := durOpts(paq.WithDurability(dir))

			s1, err := paq.Open(paq.Table(durTable(t, 120, seed)), opts...)
			if err != nil {
				t.Fatal(err)
			}
			walPath := store.WALPath(s1.DurStats().Dir)
			// One single-row mutation per op: one WAL record each, so
			// ReplayedOps (a record count) must come back as exactly this.
			const prefixOps = 25
			applyStream(t, prefixOps, seed, s1)
			walPre, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}

			// Phase 1: recover twice off the same log; both replays see the
			// full prefix and agree with the live session. s1 is abandoned,
			// not closed — a close would fold the log away.
			s2, err := paq.Open(nil, opts...)
			if err != nil {
				t.Fatalf("first recovery: %v", err)
			}
			if got := s2.DurStats().ReplayedOps; got != prefixOps {
				t.Fatalf("first recovery replayed %d ops, want %d", got, prefixOps)
			}
			sessionsEqual(t, s1, s2)
			s3, err := paq.Open(nil, opts...)
			if err != nil {
				t.Fatalf("second recovery: %v", err)
			}
			if got := s3.DurStats().ReplayedOps; got != prefixOps {
				t.Fatalf("second recovery replayed %d ops, want %d (replay must be idempotent)", got, prefixOps)
			}
			sessionsEqual(t, s1, s3)

			// Phase 2: snapshot (folds the prefix, truncates the log), then
			// resurrect the pre-snapshot WAL bytes behind the snapshot's
			// back. Every record now predates the snapshot: recovery must
			// skip them all and reproduce the snapshot state untouched.
			if err := s3.Snapshot(); err != nil {
				t.Fatal(err)
			}
			midVersion := s3.Version()
			if err := os.WriteFile(walPath, walPre, 0o644); err != nil {
				t.Fatal(err)
			}
			s4, err := paq.Open(nil, opts...)
			if err != nil {
				t.Fatalf("recovery over stale WAL: %v", err)
			}
			if got := s4.DurStats().ReplayedOps; got != 0 {
				t.Fatalf("recovery replayed %d pre-snapshot ops, want 0 (double-apply)", got)
			}
			if got := s4.Version(); got != midVersion {
				t.Fatalf("recovery over stale WAL at version %d, want %d", got, midVersion)
			}
			sessionsEqual(t, s3, s4)

			// Phase 3: new mutations append after the stale prefix. Recovery
			// must skip the prefix and replay exactly the suffix, once.
			const suffixOps = 15
			applyStream(t, suffixOps, seed+100, s4)
			s5, err := paq.Open(nil, opts...)
			if err != nil {
				t.Fatalf("recovery over mixed WAL: %v", err)
			}
			if got := s5.DurStats().ReplayedOps; got != suffixOps {
				t.Fatalf("mixed-WAL recovery replayed %d ops, want %d (stale prefix must skip, suffix apply once)", got, suffixOps)
			}
			sessionsEqual(t, s4, s5)
		})
	}
}
