package paq

import (
	"sort"

	"repro/internal/advisor"
)

// WarmSet describes one warm (built, in-memory) partitioning together
// with the advisor's evidence about it — the observability surface for
// eviction decisions (paqld exposes it via /stats).
type WarmSet struct {
	Attrs  []string `json:"attrs"`
	Groups int      `json:"groups"`
	// Uses counts queries that wanted exactly this attribute set;
	// LastUsedVersion is the dataset version at its most recent use
	// (both zero when the advisor never saw the set — e.g. a disabled
	// advisor or a set built before mining began).
	Uses            uint64 `json:"uses"`
	LastUsedVersion uint64 `json:"last_used_version"`
	// Prewarmed marks advisor-managed sets (built or adopted by
	// AdvisorMaintain; subject to the warm-set budget). Pinned marks the
	// session-wide partitioning, which is never evicted.
	Prewarmed bool `json:"prewarmed,omitempty"`
	Pinned    bool `json:"pinned,omitempty"`
}

// WarmSets lists the session's warm partitionings, sorted by attribute
// key for determinism.
func (s *Session) WarmSets() []WarmSet {
	pinned := partKey(s.partitionAttrsFor(nil))
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.parts))
	for k, lp := range s.parts {
		if lp.built.Load() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]WarmSet, 0, len(keys))
	for _, k := range keys {
		lp := s.parts[k]
		ws := WarmSet{
			Attrs:  append([]string(nil), lp.part.Attrs...),
			Groups: lp.part.NumGroups(),
			Pinned: k == pinned,
		}
		if s.adv != nil {
			if si, ok := s.adv.SetInfo(k); ok {
				ws.Uses = si.Uses
				ws.LastUsedVersion = si.LastVersion
				ws.Prewarmed = si.Prewarmed
			}
		}
		out = append(out, ws)
	}
	return out
}

// AdvisorStats snapshots the session's adaptive-planning and
// partitioning-advisor counters.
type AdvisorStats struct {
	// Enabled is false under WithoutAdvisor; every other field is then
	// zero.
	Enabled bool `json:"enabled"`
	// Outcomes/Decisions/ColdDecisions/Probes and Shapes are the
	// method-choice loop's counters (see internal/advisor).
	Outcomes      uint64 `json:"outcomes"`
	Decisions     uint64 `json:"decisions"`
	ColdDecisions uint64 `json:"cold_decisions"`
	Probes        uint64 `json:"probes"`
	Shapes        int    `json:"shapes"`
	// SetsTracked and HotSets are the attribute-set miner's counters.
	SetsTracked int `json:"sets_tracked"`
	HotSets     int `json:"hot_sets"`
	// PartBuilds counts offline partitioning builds this session paid;
	// SharedServes counts queries served by an overlapping warm superset
	// instead; Prewarmed and Evicted count AdvisorMaintain's actions.
	PartBuilds   uint64 `json:"part_builds"`
	SharedServes uint64 `json:"shared_serves"`
	Prewarmed    uint64 `json:"prewarmed"`
	Evicted      uint64 `json:"evicted"`
}

// AdvisorStats snapshots the advisor's counters (Enabled=false under
// WithoutAdvisor, with build counters still reported).
func (s *Session) AdvisorStats() AdvisorStats {
	st := AdvisorStats{Enabled: s.adv != nil}
	if s.adv != nil {
		a := s.adv.Stats()
		st.Outcomes = a.Outcomes
		st.Decisions = a.Decisions
		st.ColdDecisions = a.Cold
		st.Probes = a.Probes
		st.Shapes = a.Shapes
		st.SetsTracked = a.Sets
		st.HotSets = a.HotSets
	}
	s.mu.Lock()
	st.PartBuilds = s.partBuilds
	st.SharedServes = s.advShared
	st.Prewarmed = s.advPrewarmed
	st.Evicted = s.advEvicted
	s.mu.Unlock()
	return st
}

// AdvisorPass reports what one AdvisorMaintain pass did.
type AdvisorPass struct {
	// Prewarmed lists hot attribute sets whose partitioning this pass
	// built (or adopted, if a query had already built it); Shared lists
	// hot sets left to an overlapping prewarmed superset; Evicted lists
	// warm sets dropped to fit the budget.
	Prewarmed []string `json:"prewarmed,omitempty"`
	Shared    []string `json:"shared,omitempty"`
	Evicted   []string `json:"evicted,omitempty"`
	// Persisted reports whether the advisor's evidence was flushed to
	// the durability store.
	Persisted bool `json:"persisted,omitempty"`
}

// AdvisorMaintain runs one partitioning-advisor maintenance pass: it
// pre-warms partitionings for attribute sets the workload uses often
// (sharing across overlapping sets where a prewarmed superset already
// covers a subset), evicts the least-recently-used warm sets beyond
// the WithWarmSetBudget, and — on a durable session — persists the
// advisor's evidence so a restart keeps the tuning. The pass is meant
// for a maintenance ticker (paqld runs it alongside snapshotting), off
// the query path. A no-op under WithoutAdvisor.
func (s *Session) AdvisorMaintain() AdvisorPass {
	var pass AdvisorPass
	if s.adv == nil {
		return pass
	}
	hot := s.adv.HotSets()
	// Build supersets first: a wide set built early can absorb narrower
	// hot sets below it in the same pass, saving their builds entirely.
	sort.SliceStable(hot, func(i, j int) bool {
		return len(hot[i].Attrs) > len(hot[j].Attrs)
	})
	s.dataMu.RLock()
	for _, h := range hot {
		if _, shared, ok := s.lookupWarm(h.Attrs); ok {
			if shared {
				pass.Shared = append(pass.Shared, h.Key)
			} else if !s.adv.IsPrewarmed(h.Key) {
				// A query already built the exact set; adopt it so it can
				// serve covered subsets and falls under the budget.
				s.adv.MarkPrewarmed(h.Key)
				pass.Prewarmed = append(pass.Prewarmed, h.Key)
				s.mu.Lock()
				s.advPrewarmed++
				s.mu.Unlock()
			}
			continue
		}
		if _, err := s.partitioningFor(h.Attrs); err != nil {
			continue // advisory: an unbuildable set is just skipped
		}
		s.adv.MarkPrewarmed(h.Key)
		pass.Prewarmed = append(pass.Prewarmed, h.Key)
		s.mu.Lock()
		s.advPrewarmed++
		s.mu.Unlock()
	}
	s.dataMu.RUnlock()
	pass.Evicted = s.evictWarmSets()
	if s.st != nil {
		// Store writes run under the dataset write lock (briefly — the
		// sidecar write is independent of the WAL).
		s.dataMu.Lock()
		if err := s.saveAdvisorState(); err == nil {
			pass.Persisted = true
		}
		s.dataMu.Unlock()
	}
	return pass
}

// evictWarmSets drops least-recently-used advisor-managed warm sets
// beyond the budget (the session-wide partitioning is pinned and never
// counted). Evicting deletes the partitioning and its SketchRefine
// engine (whose solution cache keys row indices into that
// partitioning); a later query for the set rebuilds it lazily.
func (s *Session) evictWarmSets() []string {
	budget := s.cfg.warmBudget
	if budget < 0 {
		return nil // unbounded
	}
	pinned := partKey(s.partitionAttrsFor(nil))
	s.mu.Lock()
	defer s.mu.Unlock()
	var managed []string
	for k, lp := range s.parts {
		if k != pinned && lp.built.Load() && s.adv.IsPrewarmed(k) {
			managed = append(managed, k)
		}
	}
	if len(managed) <= budget {
		return nil
	}
	order := s.adv.EvictionOrder(managed)
	evict := order[:len(managed)-budget]
	for _, k := range evict {
		delete(s.parts, k)
		delete(s.engines, string(MethodSketchRefine)+"|"+k)
		s.adv.ClearPrewarmed(k)
		s.advEvicted++
	}
	s.partsDirty = true
	return append([]string(nil), evict...)
}

// saveAdvisorState flushes the advisor's evidence to the store's
// sidecar. Callers hold the dataset write lock. Nil when there is
// nothing to persist (no advisor, or an in-memory session).
func (s *Session) saveAdvisorState() error {
	if s.adv == nil || s.st == nil {
		return nil
	}
	payload, err := s.adv.MarshalState()
	if err != nil {
		return err
	}
	return s.st.SaveAdvisorState(payload)
}

// reportOutcome feeds one execution's observed record to the advisor
// (no-op without one, or for statements prepared before the advisor
// computed a shape).
func (s *Session) reportOutcome(o advisor.Outcome) {
	if s.adv == nil || o.Shape == "" {
		return
	}
	s.adv.Observe(o)
}
