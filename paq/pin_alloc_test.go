package paq

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/reltest"
)

const pinAllocQuery = `
SELECT PACKAGE(I) AS P FROM items I REPEAT 0
SUCH THAT COUNT(P.*) = 3 AND SUM(P.cost) <= 20
MAXIMIZE SUM(P.gain)`

func pinFixture(t *testing.T, opts ...Option) (*Session, *Stmt) {
	t.Helper()
	rel := relation.New("items", reltest.Schema(
		relation.Column{Name: "cost", Type: relation.Float},
		relation.Column{Name: "gain", Type: relation.Float},
	))
	for i := 0; i < 120; i++ {
		reltest.Append(rel, relation.F(1+float64(i%9)), relation.F(1+float64((i*7)%11)))
	}
	s, err := Open(Table(rel), opts...)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := s.Prepare(pinAllocQuery)
	if err != nil {
		t.Fatal(err)
	}
	return s, stmt
}

// Pinning an execution at steady state (no mutation since the last
// pin) must allocate nothing: the cached snapshot — and for
// SketchRefine the cached partitioning view — are reused, so the pin
// is a read-lock acquisition plus atomic loads. This is what makes
// "solves never block ingest" cheap enough to do on every Execute.
func TestPinExecSteadyStateAllocateZero(t *testing.T) {
	run := func(t *testing.T, s *Session, stmt *Stmt) {
		t.Helper()
		if _, err := s.pinExec(stmt, nil); err != nil { // warm the caches
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(200, func() {
			if _, err := s.pinExec(stmt, nil); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("pinExec allocates %.1f per call at steady state, want 0", avg)
		}

		// One mutation moves the version: the first re-pin pays for the
		// fresh snapshot (and view), then steady state resumes at zero.
		if _, err := s.DeleteRows([]int{0}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.pinExec(stmt, nil); err != nil {
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(200, func() {
			if _, err := s.pinExec(stmt, nil); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("pinExec allocates %.1f per call after re-warming, want 0", avg)
		}
	}

	t.Run("direct", func(t *testing.T) {
		s, stmt := pinFixture(t, WithMethod(MethodDirect))
		run(t, s, stmt)
	})
	t.Run("sketchrefine", func(t *testing.T) {
		s, stmt := pinFixture(t,
			WithMethod(MethodSketchRefine), WithTauTuples(40), WithWarmPartitioning())
		run(t, s, stmt)
	})
}
