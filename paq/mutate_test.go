package paq_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/reltest"
	"repro/internal/workload"
	"repro/paq"
)

const mutQuery = `
SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 4 AND SUM(P.redshift) <= 5
MAXIMIZE SUM(P.petrorad)`

// galaxyRow materializes one row of a source relation as a Value slice.
func galaxyRow(src *relation.Relation, row int) []relation.Value {
	return src.Row(row)
}

// TestMutationsMaintainPartitioning drives interleaved inserts and
// deletes through a SketchRefine session and differentially checks the
// maintained partitioning against a session rebuilt from scratch over
// the same final data: identical live rows must yield an objective
// within the session's reported quality bound, with zero rebuilds.
func TestMutationsMaintainPartitioning(t *testing.T) {
	const base, pool = 1200, 400
	full := workload.Galaxy(base+pool, 21)
	live := full.Subset("galaxy", full.AllRows()[:base])

	sess, err := paq.Open(paq.Table(live),
		paq.WithMethod(paq.MethodSketchRefine),
		paq.WithPartitionAttrs("redshift", "petrorad"),
		paq.WithWarmPartitioning(),
	)
	if err != nil {
		t.Fatal(err)
	}
	v0 := sess.Version()

	// Interleave: insert the pool rows four at a time, deleting two
	// rows for every batch inserted.
	next := base
	del := 0
	for next < base+pool {
		batch := make([][]relation.Value, 0, 4)
		for i := 0; i < 4 && next < base+pool; i++ {
			batch = append(batch, galaxyRow(full, next))
			next++
		}
		if _, _, err := sess.InsertRows(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.DeleteRows([]int{del, del + 1}); err != nil {
			t.Fatal(err)
		}
		del += 2
	}
	if v := sess.Version(); v <= v0 {
		t.Fatalf("version did not advance: %d -> %d", v0, v)
	}
	ms := sess.MaintStats()
	if ms.Inserts == 0 || ms.Deletes == 0 {
		t.Fatalf("maintenance saw no work: %+v", ms)
	}
	if ms.Rebuilds != 0 {
		t.Fatalf("ingestion repartitioned from scratch %d times", ms.Rebuilds)
	}

	// Maintained solve.
	stmt, err := sess.Prepare(mutQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Rebuilt-from-scratch solve over the same live rows.
	rebuilt, err := paq.Open(paq.Table(sess.Rel().Subset("galaxy", sess.Rel().AllRows())),
		paq.WithMethod(paq.MethodSketchRefine),
		paq.WithPartitionAttrs("redshift", "petrorad"),
	)
	if err != nil {
		t.Fatal(err)
	}
	rstmt, err := rebuilt.Prepare(mutQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rstmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	bound := sess.QualityBound(true)
	if bound < 1 {
		t.Fatalf("quality bound %g < 1", bound)
	}
	ratio := want.Objective / got.Objective
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if math.IsNaN(ratio) || ratio > bound {
		t.Fatalf("maintained objective %g vs rebuilt %g: ratio %g exceeds quality bound %g",
			got.Objective, want.Objective, ratio, bound)
	}
	t.Logf("maintained %g, rebuilt %g, ratio %.4f (bound %.4g), maint %+v",
		got.Objective, want.Objective, ratio, bound, ms)
}

// TestMutationInvalidatesCache: a cached solution must not survive a
// mutation that changes the answer, and the reclaimed entry is counted.
func TestMutationInvalidatesCache(t *testing.T) {
	rel := workload.Galaxy(400, 5)
	sess, err := paq.Open(paq.Table(rel.Subset("galaxy", rel.AllRows())),
		paq.WithMethod(paq.MethodDirect))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sess.Prepare(mutQuery)
	if err != nil {
		t.Fatal(err)
	}
	first, err := stmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hit, err := stmt.Execute(context.Background()); err != nil || !hit.Cached {
		t.Fatalf("repeat on unchanged data: cached=%v err=%v", hit != nil && hit.Cached, err)
	}

	// Delete every row of the winning package: the old answer is gone.
	if _, err := sess.DeleteRows(first.Rows); err != nil {
		t.Fatal(err)
	}
	second, err := stmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("post-mutation execution served the stale cached package")
	}
	for _, row := range second.Rows {
		for _, gone := range first.Rows {
			if row == gone {
				t.Fatalf("answer package contains deleted row %d", row)
			}
		}
	}
	cs := sess.CacheStats()[paq.MethodDirect]
	if cs.Invalidations == 0 {
		t.Fatalf("no cache invalidations counted: %+v", cs)
	}
}

// TestMutationBatchesAtomic: a batch with any invalid member leaves the
// dataset untouched.
func TestMutationBatchesAtomic(t *testing.T) {
	rel := workload.Galaxy(50, 2)
	sess, err := paq.Open(paq.Table(rel.Subset("galaxy", rel.AllRows())))
	if err != nil {
		t.Fatal(err)
	}
	v0 := sess.Version()

	bad := galaxyRow(sess.Rel(), 0)
	bad[1] = relation.S("not a number") // ra is Float
	if _, _, err := sess.InsertRows([][]relation.Value{galaxyRow(sess.Rel(), 1), bad}); err == nil {
		t.Fatal("insert with a mistyped row must fail")
	}
	if sess.Version() != v0 || sess.Rel().Len() != 50 {
		t.Fatal("failed insert mutated the dataset")
	}

	if _, err := sess.DeleteRows([]int{1, 1}); err == nil {
		t.Fatal("duplicate delete in one batch must fail")
	}
	if _, err := sess.DeleteRows([]int{99}); err == nil {
		t.Fatal("out-of-range delete must fail")
	}
	if sess.Version() != v0 {
		t.Fatal("failed delete mutated the dataset")
	}

	if _, err := sess.UpdateRows([]int{0}, nil); err == nil {
		t.Fatal("update with mismatched rows/vals must fail")
	}
	if _, err := sess.UpdateRows([]int{0}, [][]relation.Value{bad}); err == nil {
		t.Fatal("mistyped update must fail")
	}
	if sess.Version() != v0 {
		t.Fatal("failed update mutated the dataset")
	}
}

// TestUpdateRowsMovesAnswer: updating a tuple's values in place changes
// the answer (and keeps row identity stable).
func TestUpdateRowsMovesAnswer(t *testing.T) {
	rel := relation.New("galaxy", reltest.Schema(
		relation.Column{Name: "redshift", Type: relation.Float},
		relation.Column{Name: "petrorad", Type: relation.Float},
	))
	for i := 0; i < 6; i++ {
		reltest.Append(rel, relation.F(0.5), relation.F(float64(i)))
	}
	sess, err := paq.Open(paq.Table(rel))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sess.Prepare(`
SELECT PACKAGE(G) AS P FROM galaxy G REPEAT 0
SUCH THAT COUNT(P.*) = 1
MAXIMIZE SUM(P.petrorad)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0] != 5 || res.Objective != 5 {
		t.Fatalf("pre-update answer %v obj %g, want row 5 obj 5", res.Rows, res.Objective)
	}
	if _, err := sess.UpdateRows([]int{2}, [][]relation.Value{{relation.F(0.5), relation.F(50)}}); err != nil {
		t.Fatal(err)
	}
	res, err = stmt.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0] != 2 || res.Objective != 50 {
		t.Fatalf("post-update answer %v obj %g, want row 2 obj 50", res.Rows, res.Objective)
	}
}

// TestConcurrentExecuteAndMutate hammers a session with concurrent
// executions and mutations; run under -race this asserts the dataset
// lock fully serializes the solve path against ingestion.
func TestConcurrentExecuteAndMutate(t *testing.T) {
	full := workload.Galaxy(900, 13)
	sess, err := paq.Open(paq.Table(full.Subset("galaxy", full.AllRows()[:600])),
		paq.WithMethod(paq.MethodSketchRefine),
		paq.WithPartitionAttrs("redshift", "petrorad"),
		paq.WithWarmPartitioning(),
	)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sess.Prepare(mutQuery)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := stmt.Execute(context.Background()); err != nil {
					t.Errorf("execute: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 600
		for i := 0; i < 40; i++ {
			if i%2 == 0 && next < 900 {
				if _, _, err := sess.InsertRows([][]relation.Value{galaxyRow(full, next)}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				next++
			} else {
				if _, err := sess.DeleteRows([]int{i}); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if ms := sess.MaintStats(); ms.Rebuilds != 0 {
		t.Errorf("concurrent ingestion triggered %d rebuilds", ms.Rebuilds)
	}
}
