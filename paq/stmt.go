package paq

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/paql"
	"repro/internal/partition"
	"repro/internal/translate"
)

// autoDirectMaxVars is the base-relation size up to which MethodAuto
// stays with a single ILP; beyond it, the search-tree blowup the paper
// documents makes SketchRefine the default.
const autoDirectMaxVars = 2000

// Stmt is a prepared package query: parsed, validated, translated
// against the session's relation, and planned — the evaluation method
// is chosen (and justified) at Prepare time, so Plan answers EXPLAIN
// without solving anything.
type Stmt struct {
	sess   *Session
	query  string
	spec   *core.Spec
	method Method
	reason string
	// part is the partitioning the statement refines over (nil unless
	// the method is sketchrefine); partCacheKey is part's warm-set map
	// key, precomputed so pinning an execution does not re-derive it
	// (the pin path is allocation-free at steady state).
	part         *partition.Partitioning
	partCacheKey string
	plan         *Plan
	// shape is the advisor's structural query key (empty without an
	// advisor); adaptive is the advisor's decision record for MethodAuto
	// statements.
	shape    string
	adaptive *AdaptiveInfo
	// planDur is the wall-clock cost of Prepare (parse, translate,
	// method resolution, plan build). Planning happens once per
	// statement, so a traced Execute replays this as its "plan" span.
	planDur time.Duration
}

// AdaptiveInfo is the advisor's decision record inside a plan: what the
// bandit loop chose, against what fallback, and on what evidence — so
// EXPLAIN shows not just the method but why the workload history picked
// it.
type AdaptiveInfo struct {
	// Shape fingerprints the query's structure (constants abstracted
	// away): statements with equal shapes share advisor evidence.
	Shape string `json:"shape"`
	// Chosen is the advisor's pick; Fallback what the fixed heuristic
	// would have chosen.
	Chosen   Method `json:"chosen"`
	Fallback Method `json:"fallback"`
	// Cold marks a decision made on insufficient evidence (the fallback
	// wins); Probe a deliberate exploration of an under-sampled or stale
	// alternative.
	Cold  bool `json:"cold,omitempty"`
	Probe bool `json:"probe,omitempty"`
	// Reason is the advisor's one-line justification.
	Reason string `json:"reason"`
	// Scores snapshots the observed evidence per candidate.
	Scores []advisor.MethodScore `json:"scores,omitempty"`
	// SharedPartitioning names the attribute set of the warm superset
	// partitioning serving this query, when the advisor shared one
	// instead of building the query's exact set.
	SharedPartitioning []string `json:"shared_partitioning,omitempty"`
}

// Plan is the typed EXPLAIN output of a prepared statement: the chosen
// evaluation method with the reason it was picked, the ILP size, and —
// for SketchRefine — the partitioning shape.
type Plan struct {
	// Method is the chosen evaluation strategy.
	Method Method `json:"method"`
	// Reason says why the planner picked it.
	Reason string `json:"reason"`
	// Relation and Rows describe the input.
	Relation string `json:"relation"`
	Rows     int    `json:"rows"`
	// Variables is the number of ILP variables after base-relation
	// elimination (the rows passing WHERE and MIN/MAX restrictions).
	Variables int `json:"variables"`
	// Constraints is the number of linear constraint rows; Restrictions
	// the number of per-tuple eliminations lowered from MIN/MAX
	// predicates.
	Constraints  int `json:"constraints"`
	Restrictions int `json:"restrictions,omitempty"`
	// Repeat is the REPEAT bound (-1 = unlimited repetition).
	Repeat int `json:"repeat"`
	// DatasetVersion is the dataset version the statement was planned
	// at. The plan is a snapshot: mutations after Prepare do not re-plan
	// (Execute still sees the new data — the base relation is recomputed
	// per solve), but row/variable counts here describe this version.
	DatasetVersion uint64 `json:"dataset_version"`
	// Objective renders the optimization criterion ("" for
	// feasibility-only queries).
	Objective string `json:"objective,omitempty"`
	// Partitioning describes the offline partitioning (sketchrefine
	// only).
	Partitioning *PartitionInfo `json:"partitioning,omitempty"`
	// Adaptive is the advisor's decision record (MethodAuto statements
	// on sessions with the advisor enabled; nil otherwise).
	Adaptive *AdaptiveInfo `json:"adaptive,omitempty"`
	// CacheKey fingerprints the optimization problem: two statements
	// with equal keys describe the same problem and share solution-cache
	// entries. Stable across sessions over identically named relations.
	CacheKey string `json:"cache_key"`
}

// String renders the plan for terminals (the -explain output).
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "method:       %s\n", p.Method)
	fmt.Fprintf(&b, "reason:       %s\n", p.Reason)
	fmt.Fprintf(&b, "relation:     %s (%d rows, %d eligible, v%d)\n", p.Relation, p.Rows, p.Variables, p.DatasetVersion)
	fmt.Fprintf(&b, "ilp:          %d variables × %d constraints", p.Variables, p.Constraints)
	if p.Restrictions > 0 {
		fmt.Fprintf(&b, " (+%d tuple restrictions)", p.Restrictions)
	}
	b.WriteString("\n")
	if p.Repeat >= 0 {
		fmt.Fprintf(&b, "repeat:       %d (each tuple at most %d×)\n", p.Repeat, p.Repeat+1)
	} else {
		fmt.Fprintf(&b, "repeat:       unlimited\n")
	}
	if p.Objective != "" {
		fmt.Fprintf(&b, "objective:    %s\n", p.Objective)
	}
	if pi := p.Partitioning; pi != nil {
		fmt.Fprintf(&b, "partitioning: %d groups, τ=%d, attrs [%s], built in %.0fms\n",
			pi.Groups, pi.Tau, strings.Join(pi.Attrs, " "), pi.BuildMS)
	}
	if a := p.Adaptive; a != nil {
		fmt.Fprintf(&b, "adaptive:     %s\n", a.Reason)
		if len(a.SharedPartitioning) > 0 {
			fmt.Fprintf(&b, "adaptive:     sharing warm partitioning over [%s]\n", strings.Join(a.SharedPartitioning, " "))
		}
	}
	fmt.Fprintf(&b, "cache-key:    %s", p.CacheKey)
	return b.String()
}

// MarshalPlan is Plan as indented JSON (what paqld returns for
// "explain": true requests).
func (p *Plan) MarshalPlan() ([]byte, error) { return json.MarshalIndent(p, "", "  ") }

// Prepare parses, validates, and translates a PaQL query against the
// session's relation, chooses the evaluation method (resolving
// MethodAuto and lazily warming the partitioning a SketchRefine plan
// needs), and returns the prepared statement. Parse failures are
// *ParseError; type errors in the translation satisfy
// errors.Is(err, ErrTypeMismatch).
//
// The only option valid here is WithMethod, overriding the session's
// default for this statement.
func (s *Session) Prepare(query string, opts ...Option) (*Stmt, error) {
	t0 := time.Now()
	cfg := s.cfg
	if err := applyPrepare(&cfg, opts); err != nil {
		return nil, err
	}
	q, err := paql.Parse(query)
	if err != nil {
		return nil, mapParseErr(err)
	}
	// Translation, method resolution, and planning read the relation and
	// may build a partitioning; hold the dataset read lock so mutations
	// cannot interleave.
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	spec, err := translate.Translate(q, s.rel)
	if err != nil {
		return nil, mapTranslateErr(err)
	}
	st := &Stmt{sess: s, query: query, spec: spec}
	if err := st.resolveMethod(cfg.method); err != nil {
		return nil, err
	}
	st.buildPlan()
	if st.part != nil {
		st.partCacheKey = partKey(st.part.Attrs)
	}
	st.planDur = time.Since(t0)
	return st, nil
}

// resolveMethod picks the statement's evaluation method, warming the
// partitioning when SketchRefine needs one. For MethodAuto on a session
// with the advisor enabled, the fixed heuristic only nominates the
// fallback: the advisor's bandit loop decides among the candidates the
// session can serve without building anything new, and the decision is
// recorded in the plan's Adaptive block.
func (st *Stmt) resolveMethod(m Method) error {
	s := st.sess
	nBase := len(st.spec.BaseRows())
	if s.adv != nil {
		st.shape = engine.ShapeKey(st.spec)
	}
	switch m {
	case MethodDirect, MethodNaive:
		st.method = m
		st.reason = "method fixed by WithMethod"
		return nil
	case MethodSketchRefine:
		attrs := s.partitionAttrsFor(st.spec.QueryAttrs())
		s.observeAttrDemand(attrs)
		part, shared, err := s.partitioningForQuery(attrs)
		if err != nil {
			return err
		}
		st.method = m
		st.reason = "method fixed by WithMethod"
		if shared {
			st.reason += fmt.Sprintf("; served by the warm partitioning over [%s]", strings.Join(part.Attrs, " "))
		}
		st.part = part
		return nil
	}
	// MethodAuto: compute the fixed heuristic's choice first — it is the
	// answer without an advisor, and the advisor's fallback with one.
	attrs := s.partitionAttrsFor(st.spec.QueryAttrs())
	s.observeAttrDemand(attrs)
	var fallback Method
	var fallbackReason string
	var part *partition.Partitioning
	var sharedAttrs []string
	if nBase <= autoDirectMaxVars {
		fallback = MethodDirect
		fallbackReason = fmt.Sprintf("auto: %d eligible tuples fit a single ILP (threshold %d)", nBase, autoDirectMaxVars)
		// Small inputs never pay a partitioning build just to offer the
		// advisor an alternative — but an already-warm set costs nothing.
		if p, shared, ok := s.lookupWarm(attrs); ok {
			part = p
			if shared {
				sharedAttrs = append([]string(nil), p.Attrs...)
			}
		}
	} else {
		p, shared, err := s.partitioningForQuery(attrs)
		if err != nil {
			fallback = MethodDirect
			fallbackReason = fmt.Sprintf("auto: %d eligible tuples exceed the single-ILP threshold, but no partitioning is available (%v); falling back to DIRECT", nBase, err)
		} else {
			part = p
			if shared {
				sharedAttrs = append([]string(nil), p.Attrs...)
			}
			fallback = MethodSketchRefine
			fallbackReason = fmt.Sprintf("auto: %d eligible tuples exceed the single-ILP threshold (%d); refining over %d groups (τ=%d)",
				nBase, autoDirectMaxVars, part.NumGroups(), part.Tau)
		}
	}
	if s.adv == nil {
		st.method = fallback
		st.reason = fallbackReason
		if fallback == MethodSketchRefine {
			st.part = part
		}
		return nil
	}
	candidates := []string{string(MethodDirect)}
	if part != nil {
		candidates = append(candidates, string(MethodSketchRefine))
	}
	dec := s.adv.Decide(st.shape, string(fallback), candidates)
	st.method = Method(dec.Method)
	if dec.Cold {
		// Cold decisions are the heuristic's verbatim: the plan reads
		// identically to a session without the advisor.
		st.reason = fallbackReason
	} else {
		st.reason = "adaptive: " + dec.Reason
	}
	if st.method == MethodSketchRefine {
		st.part = part
	}
	st.adaptive = &AdaptiveInfo{
		Shape:    shapeHash(st.shape),
		Chosen:   st.method,
		Fallback: fallback,
		Cold:     dec.Cold,
		Probe:    dec.Probe,
		Reason:   dec.Reason,
		Scores:   dec.Scores,
	}
	if st.method == MethodSketchRefine && len(sharedAttrs) > 0 {
		st.adaptive.SharedPartitioning = sharedAttrs
	}
	return nil
}

// shapeHash compresses a shape key for display (the raw key spells out
// the whole query structure).
func shapeHash(shape string) string {
	if shape == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(shape))
	return hex.EncodeToString(sum[:8])
}

// buildPlan materializes the typed plan once at Prepare.
func (st *Stmt) buildPlan() {
	spec := st.spec
	plan := &Plan{
		Method:         st.method,
		Reason:         st.reason,
		Relation:       st.sess.rel.Name(),
		Rows:           st.sess.rel.Live(),
		Variables:      len(spec.BaseRows()),
		Constraints:    len(spec.Constraints),
		Restrictions:   len(spec.Restrictions),
		Repeat:         spec.Repeat,
		DatasetVersion: st.sess.rel.Version(),
		CacheKey:       stableCacheKey(st.method, spec),
	}
	if spec.Objective != nil {
		plan.Objective = spec.Objective.String()
	}
	if st.part != nil {
		plan.Partitioning = infoOf(st.part)
	}
	plan.Adaptive = st.adaptive
	st.plan = plan
}

// Plan returns the statement's typed EXPLAIN output. It never solves.
func (st *Stmt) Plan() *Plan { return st.plan }

// Query returns the original PaQL text.
func (st *Stmt) Query() string { return st.query }

// Method returns the statement's resolved evaluation method.
func (st *Stmt) Method() Method { return st.method }

// QueryAttrs returns the numeric attributes the query aggregates over
// (what partitioning coverage is measured against).
func (st *Stmt) QueryAttrs() []string { return st.spec.QueryAttrs() }

// stableCacheKey fingerprints the optimization problem for display. It
// is the engine's cache key — prefixed with the resolved method, since
// each method has its own solution cache and the advisor may flip
// methods between otherwise identical statements — with the relation's
// memory address (process identity) replaced by its name, live size,
// and dataset version, hashed so EXPLAIN output stays one line; equal
// keys ⇒ the same method solving the same problem over identically
// named relations with identical mutation histories.
func stableCacheKey(m Method, spec *core.Spec) string {
	key := engine.SpecKey(spec)
	if i := strings.Index(key, ";"); i > 0 {
		key = fmt.Sprintf("rel=%s/%d@v%d%s", spec.Rel.Name(), spec.Rel.Live(), spec.Rel.Version(), key[i:])
	}
	key = fmt.Sprintf("method=%s;%s", m, key)
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}
